//! Figure 17: with DCQCN the fabric sustains 16× the user traffic — the
//! user-transfer goodput distribution with 5 pairs and no DCQCN matches
//! (or is beaten by) 80 pairs with DCQCN.

use crate::common::{banner, CcChoice, RunScale};
use crate::runner::par_map;
use crate::scenarios::{benchmark_run, BenchmarkConfig};
use netsim::stats::percentile;

fn cdf_row(label: &str, v: &[f64]) {
    println!(
        "  {label:<22} n={:<5} p10={:>6.2} p25={:>6.2} p50={:>6.2} p75={:>6.2} p90={:>6.2}",
        v.len(),
        percentile(v, 10.0),
        percentile(v, 25.0),
        percentile(v, 50.0),
        percentile(v, 75.0),
        percentile(v, 90.0),
    );
}

/// Runs the experiment.
pub fn run(quick: bool) {
    banner(
        "fig17",
        "16x user traffic: (no DCQCN, 5 pairs) vs (DCQCN, 80 pairs)",
    );
    let scale = RunScale { quick };
    let duration = scale.dur(300, 800);
    let configs = [
        ("No DCQCN, 5 pairs", CcChoice::None, 5usize),
        ("DCQCN, 80 pairs", CcChoice::dcqcn_paper(), 80),
    ];
    let results = par_map(&configs, |&(_, cc, pairs)| {
        benchmark_run(&BenchmarkConfig {
            cc,
            pairs,
            incast_degree: 10,
            duration,
            pfc: true,
            misconfigured: false,
            nack_enabled: true,
            seed: 5,
        })
    });
    for ((label, _, _), r) in configs.iter().zip(&results) {
        println!("(a) user transfer goodput CDF (Gbps):");
        cdf_row(label, &r.user_goodputs);
        println!("(b) incast flow goodput CDF (Gbps):");
        cdf_row(label, &r.incast_goodputs);
    }
    println!("paper: DCQCN at 16x the pairs matches no-DCQCN at 1x — 16x headroom.");
}
