//! §4: buffer-threshold engineering — reproduces the paper's arithmetic
//! for `t_flight`, `t_PFC` and `t_ECN` on the Trident II switch.

use crate::common::banner;
use dcqcn::thresholds::{dynamic_ecn_bound, report};
use netsim::buffer::BufferConfig;

/// Runs the experiment.
pub fn run(_quick: bool) {
    banner(
        "sec4",
        "PFC/ECN buffer thresholds (Arista 7050QX32 / Trident II)",
    );
    let cfg = BufferConfig::trident2();
    let r = report(&cfg, 8.0);
    println!(
        "switch: {} MB shared buffer, {} ports, 8 PFC priorities, MTU {}",
        cfg.total_bytes / 1_000_000,
        cfg.num_ports,
        cfg.mtu_bytes
    );
    println!(
        "  t_flight (headroom/port/priority) : {:.1} KB  (paper: 22.4)",
        r.t_flight as f64 / 1000.0
    );
    println!(
        "  t_PFC static upper bound          : {:.2} KB  (paper: 24.47)",
        r.t_pfc_static as f64 / 1000.0
    );
    println!(
        "  naive static t_ECN bound          : {:.2} KB  (paper: ~0.8, < 1 MTU, infeasible)",
        r.t_ecn_naive as f64 / 1000.0
    );
    println!(
        "  dynamic t_ECN bound at beta = 8   : {:.2} KB  (paper: < 21.7)",
        r.t_ecn_dynamic as f64 / 1000.0
    );
    println!();
    println!("sensitivity of the t_ECN bound to beta:");
    println!("{:>8} | {:>12}", "beta", "t_ECN bound");
    for beta in [1.0, 2.0, 4.0, 8.0, 16.0, 64.0] {
        println!(
            "{beta:>8} | {:>9.2} KB",
            dynamic_ecn_bound(&cfg, beta) as f64 / 1000.0
        );
    }
    println!("larger beta pauses later, leaving more room for ECN to act first.");
}
