//! Figure 10: the fluid model closely matches the implementation — the
//! rate trace of a second sender joining an established flow, from both
//! the packet simulator and the DDE model.

use crate::common::{banner, mean, CcChoice};
use crate::report;
use fluid::model::{FlowState, FluidSim};
use fluid::params::FluidParams;
use netsim::packet::DATA_PRIORITY;
use netsim::stats::SamplerConfig;
use netsim::topology::{star, LinkParams};
use netsim::units::{Duration, Time};

/// Offset at which the second sender joins.
const JOIN_MS: u64 = 100;
/// Total horizon.
const END_MS: u64 = 600;

/// Runs the experiment.
pub fn run(quick: bool) {
    banner(
        "fig10",
        "fluid model vs implementation (rate of the joining sender)",
    );
    let end_ms = if quick { 300 } else { END_MS };

    // --- packet simulator ---
    let cc = CcChoice::dcqcn_paper();
    let mut s = star(
        3,
        LinkParams::default(),
        cc.host_config(),
        cc.switch_config(true, false),
        21,
    );
    let f = cc.factory();
    let f1 = s.net.add_flow(s.hosts[0], s.hosts[2], DATA_PRIORITY, &f);
    let f2 = s.net.add_flow(s.hosts[1], s.hosts[2], DATA_PRIORITY, &f);
    s.net.send_message(f1, u64::MAX, Time::ZERO);
    s.net.send_message(f2, u64::MAX, Time::from_millis(JOIN_MS));
    s.net.enable_sampling(
        Duration::from_millis(1),
        SamplerConfig {
            rate_flows: vec![f2],
            ..SamplerConfig::default()
        },
    );
    s.net.run_until(Time::from_millis(end_ms));
    if report::dash_enabled() {
        report::put_dash(&s.net.dashboard("fig10: joining sender (packet sim)"));
    }
    let sim = s.net.flow_rate_timeline(f2).expect("sampled").series();

    // --- fluid model ---
    let params = FluidParams::paper_40g();
    let c = params.capacity_pps;
    let mut fsim = FluidSim::new(
        params,
        vec![
            FlowState::new(0.0, c),
            FlowState::new(JOIN_MS as f64 / 1000.0, c),
        ],
        1e-6,
    );
    let trace = fsim.run(end_ms as f64 / 1000.0, 1e-3);

    println!(
        "{:>8} | {:>10} | {:>10}",
        "t (ms)", "sim Gbps", "fluid Gbps"
    );
    let step = if quick { 20 } else { 25 };
    let mut sim_tail = Vec::new();
    let mut fluid_tail = Vec::new();
    for ms in (0..end_ms).step_by(step) {
        let t = ms as f64 / 1000.0;
        let si = sim
            .times
            .iter()
            .position(|&x| x.as_secs_f64() >= t)
            .unwrap_or(sim.times.len() - 1);
        let fi = trace
            .times
            .iter()
            .position(|&x| x >= t)
            .unwrap_or(trace.times.len() - 1);
        // Before the join, the sampler reports the CC's idle line rate;
        // the flow is not sending, so display zero like the fluid trace.
        let sv = if ms < JOIN_MS { 0.0 } else { sim.values[si] };
        let fv = trace.rates_gbps[1][fi];
        println!("{ms:>8} | {sv:>10.2} | {fv:>10.2}");
        if ms > end_ms * 2 / 3 {
            sim_tail.push(sv);
            fluid_tail.push(fv);
        }
    }
    println!(
        "settled rates: sim {:.2} Gbps, fluid {:.2} Gbps (fair share: 20.00)",
        mean(&sim_tail),
        mean(&fluid_tail)
    );
}
