//! Figure 11: fluid-model parameter sweeps for convergence — byte
//! counter, rate-increase timer, K_max, and P_max. The z-axis of the
//! paper's surfaces is the two-flow throughput difference over time;
//! lower is better.

use crate::common::banner;
use crate::runner::par_map;
use fluid::sweep::{sweep_byte_counter, sweep_kmax, sweep_pmax, sweep_timer, SweepPoint};

/// One sweep panel: (title, value-column header, the sweep itself).
type Panel<'a> = (&'a str, &'a str, Box<dyn Fn() -> Vec<SweepPoint> + Sync>);

fn print_points(title: &str, unit: &str, pts: &[SweepPoint]) {
    println!("{title}:");
    println!(
        "{:>10} | {:>8} {:>8} {:>8} {:>8} | {:>10}",
        unit, "d@50ms", "d@100ms", "d@150ms", "d@200ms", "tail diff"
    );
    for p in pts {
        let at = |t: f64| -> f64 {
            match p.times.iter().position(|&x| x >= t) {
                Some(i) => p.diff_gbps[i],
                None => *p.diff_gbps.last().unwrap_or(&0.0),
            }
        };
        println!(
            "{:>10} | {:>8.1} {:>8.1} {:>8.1} {:>8.1} | {:>10.2}",
            p.value,
            at(0.05),
            at(0.10),
            at(0.15),
            at(0.20),
            p.tail_diff_gbps
        );
    }
    println!();
}

/// Runs the experiment.
pub fn run(quick: bool) {
    banner(
        "fig11",
        "parameter sweeps for convergence (fluid model, |R1-R2| in Gbps)",
    );
    let horizon = if quick { 0.2 } else { 0.3 };
    let bc: &[u64] = if quick {
        &[150, 10_000]
    } else {
        &[150, 500, 1_500, 5_000, 10_000]
    };
    let timer: &[u64] = if quick {
        &[55, 1_500]
    } else {
        &[55, 150, 300, 500, 1_500]
    };
    let kmax: &[u64] = if quick {
        &[40, 200]
    } else {
        &[40, 80, 200, 400, 1_000]
    };
    let pmax: &[f64] = if quick {
        &[1.0, 0.01]
    } else {
        &[1.0, 0.5, 0.2, 0.1, 0.01]
    };

    // Each panel integrates the fluid model over every sweep value; fan
    // the four panels out and print in panel order.
    let jobs: Vec<Panel> = vec![
        (
            "(a) byte counter sweep, strawman parameters (KB)",
            "B (KB)",
            Box::new(move || sweep_byte_counter(bc, horizon)),
        ),
        (
            "(b) timer sweep with 10 MB byte counter (µs)",
            "T (µs)",
            Box::new(move || sweep_timer(timer, horizon)),
        ),
        (
            "(c) K_max sweep, strawman parameters (KB)",
            "Kmax(KB)",
            Box::new(move || sweep_kmax(kmax, horizon)),
        ),
        (
            "(d) P_max sweep with K_max = 200 KB",
            "Pmax",
            Box::new(move || sweep_pmax(pmax, horizon)),
        ),
    ];
    let results = par_map(&jobs, |(_, _, job)| job());
    for ((title, unit, _), pts) in jobs.iter().zip(&results) {
        print_points(title, unit, pts);
    }
    println!("paper's conclusions: slow byte counter helps but is sluggish; fast timer");
    println!("converges best; RED-like marking (small P_max) fixes the strawman too.");
}
