//! Shared experiment infrastructure: congestion-control selection, switch
//! and host configuration per scheme, and table printing.

use baselines::dctcp::{Dctcp, DctcpParams};
use baselines::qcn::{QcnParams, QcnRp};
use baselines::timely::{timely_host_config, Timely, TimelyParams};
use dcqcn::params::DcqcnParams;
use dcqcn::rp::DcqcnRp;
use netsim::cc::{CongestionControl, NoCc};
use netsim::ecn::RedConfig;
use netsim::host::HostConfig;
use netsim::switch::{QcnCpConfig, SwitchConfig};
use netsim::telemetry::{Json, SpanState, NUM_SPAN_STATES};
use netsim::units::{Bandwidth, Duration};

/// Which end-to-end congestion control a scenario runs.
#[derive(Debug, Clone, Copy)]
pub enum CcChoice {
    /// PFC only — the paper's "No DCQCN".
    None,
    /// DCQCN with the given parameters.
    Dcqcn(DcqcnParams),
    /// DCTCP (window-based ECN).
    Dctcp(DctcpParams),
    /// QCN (quantized feedback) — baseline.
    Qcn(QcnParams),
    /// TIMELY (RTT-gradient) — the §3.3 contrast.
    Timely(TimelyParams),
}

impl CcChoice {
    /// The deployed DCQCN configuration (Figure 14).
    pub fn dcqcn_paper() -> CcChoice {
        CcChoice::Dcqcn(DcqcnParams::paper())
    }

    /// A per-flow CC factory for [`netsim::network::Network::add_flow`].
    pub fn factory(self) -> impl Fn(Bandwidth) -> Box<dyn CongestionControl> {
        move |line| -> Box<dyn CongestionControl> {
            match self {
                CcChoice::None => Box::new(NoCc::new(line)),
                CcChoice::Dcqcn(p) => Box::new(DcqcnRp::new(line, p)),
                CcChoice::Dctcp(p) => Box::new(Dctcp::new(line, p)),
                CcChoice::Qcn(p) => Box::new(QcnRp::new(line, p)),
                CcChoice::Timely(p) => Box::new(Timely::new(line, p)),
            }
        }
    }

    /// The switch RED/ECN configuration this scheme expects.
    pub fn red(&self) -> RedConfig {
        match self {
            CcChoice::None => RedConfig::disabled(),
            CcChoice::Dcqcn(_) => dcqcn::params::red_deployed(),
            CcChoice::Dctcp(_) => dcqcn::params::red_cutoff_dctcp_40g(),
            CcChoice::Qcn(_) => RedConfig::disabled(),
            CcChoice::Timely(_) => RedConfig::disabled(),
        }
    }

    /// The host/NIC configuration this scheme expects (NP on for DCQCN,
    /// DCTCP delayed-ACK style echoing, etc.).
    pub fn host_config(&self) -> HostConfig {
        match self {
            CcChoice::Dcqcn(p) => HostConfig {
                cnp_interval: Some(p.cnp_interval),
                ..HostConfig::default()
            },
            CcChoice::Dctcp(_) => HostConfig {
                cnp_interval: None,
                ack_every: 2, // DCTCP's delayed-ACK echo granularity
                ..HostConfig::default()
            },
            CcChoice::Timely(_) => timely_host_config(),
            _ => HostConfig {
                cnp_interval: None,
                ..HostConfig::default()
            },
        }
    }

    /// The switch configuration this scheme expects. `pfc` disables PFC
    /// entirely when false; `misconfigured` applies the paper's §6.2
    /// wrong thresholds (static t_PFC at the upper bound, ECN five times
    /// higher — so PFC fires before ECN).
    pub fn switch_config(&self, pfc: bool, misconfigured: bool) -> SwitchConfig {
        let mut cfg = SwitchConfig::paper_default().with_red(self.red());
        if let CcChoice::Qcn(_) = self {
            cfg.qcn = Some(QcnCpConfig::default());
        }
        if !pfc {
            cfg = cfg.without_pfc();
        }
        if misconfigured {
            cfg.buffer.threshold = netsim::buffer::PfcThreshold::Static(24_470);
            cfg.red = RedConfig::cutoff(5 * 24_470);
        }
        cfg
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            CcChoice::None => "No DCQCN",
            CcChoice::Dcqcn(_) => "DCQCN",
            CcChoice::Dctcp(_) => "DCTCP",
            CcChoice::Qcn(_) => "QCN",
            CcChoice::Timely(_) => "TIMELY",
        }
    }
}

/// Run-length knobs: `--quick` shrinks durations and seed counts so the
/// full suite finishes in a couple of minutes.
#[derive(Debug, Clone, Copy)]
pub struct RunScale {
    /// Quick mode?
    pub quick: bool,
}

impl RunScale {
    /// Picks `q` in quick mode, else `full`.
    pub fn pick<T>(&self, q: T, full: T) -> T {
        if self.quick {
            q
        } else {
            full
        }
    }

    /// Seeds for repeated runs.
    pub fn seeds(&self, q: usize, full: usize) -> Vec<u64> {
        (1..=self.pick(q, full) as u64).collect()
    }

    /// A run duration.
    pub fn dur(&self, q_ms: u64, full_ms: u64) -> Duration {
        Duration::from_millis(self.pick(q_ms, full_ms))
    }
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!();
    println!("=== {id}: {title} ===");
}

/// Formats min/median/max of a sample set. The median is
/// [`netsim::stats::median`] — the workspace-wide nearest-rank definition
/// — so tables agree with every percentile the experiments print.
pub fn mmm(values: &[f64]) -> String {
    if values.is_empty() {
        return "(no samples)".to_string();
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    format!(
        "min={:6.2} med={:6.2} max={:6.2}",
        v[0],
        netsim::stats::median(&v),
        v[v.len() - 1]
    )
}

/// Prints a span-attributed time breakdown as an indented table: one
/// line per state (µs and share of `total`), plus the attributed sum —
/// which equals the measured FCT when the breakdown came from a
/// completion snapshot (the decomposition identity).
pub fn print_breakdown(breakdown: &[Duration; NUM_SPAN_STATES], total: Duration) {
    let total_us = total.as_micros_f64();
    for state in SpanState::ALL {
        let d = breakdown[state as usize];
        if d == Duration::ZERO {
            continue;
        }
        let us = d.as_micros_f64();
        let share = if total_us > 0.0 {
            100.0 * us / total_us
        } else {
            0.0
        };
        println!("  {:>15}: {us:>10.1} us ({share:5.1}%)", state.name());
    }
    let sum: Duration = breakdown.iter().copied().sum();
    println!(
        "  {:>15}: {:>10.1} us (fct {:.1} us)",
        "sum",
        sum.as_micros_f64(),
        total_us
    );
}

/// A span-attributed breakdown as a `{state: microseconds}` JSON object
/// for `--json` reports.
pub fn breakdown_json(breakdown: &[Duration; NUM_SPAN_STATES]) -> Json {
    Json::obj(
        SpanState::ALL
            .iter()
            .map(|&s| (s.name(), Json::from(breakdown[s as usize].as_micros_f64())))
            .collect(),
    )
}

/// Mean of a slice (0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (0 when < 2 samples).
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_build_expected_algorithms() {
        let line = Bandwidth::gbps(40);
        assert_eq!(CcChoice::None.factory()(line).name(), "none");
        assert_eq!(CcChoice::dcqcn_paper().factory()(line).name(), "dcqcn");
        assert_eq!(
            CcChoice::Dctcp(DctcpParams::default_40g()).factory()(line).name(),
            "dctcp"
        );
        assert_eq!(
            CcChoice::Qcn(QcnParams::standard()).factory()(line).name(),
            "qcn"
        );
    }

    #[test]
    fn host_configs_match_scheme() {
        assert!(CcChoice::dcqcn_paper().host_config().cnp_interval.is_some());
        assert!(CcChoice::None.host_config().cnp_interval.is_none());
        assert_eq!(
            CcChoice::Dctcp(DctcpParams::default_40g())
                .host_config()
                .ack_every,
            2
        );
    }

    #[test]
    fn misconfigured_switch_marks_after_pausing() {
        let cfg = CcChoice::dcqcn_paper().switch_config(true, true);
        match cfg.buffer.threshold {
            netsim::buffer::PfcThreshold::Static(t) => {
                assert!(cfg.red.kmin_bytes > t, "ECN above PFC = misconfigured")
            }
            _ => panic!("misconfigured uses the static bound"),
        }
        assert!(cfg.pfc_enabled);
    }

    #[test]
    fn no_pfc_switch() {
        let cfg = CcChoice::dcqcn_paper().switch_config(false, false);
        assert!(!cfg.pfc_enabled);
    }

    #[test]
    fn scale_picks() {
        let s = RunScale { quick: true };
        assert_eq!(s.pick(1, 10), 1);
        assert_eq!(s.seeds(2, 5), vec![1, 2]);
        let f = RunScale { quick: false };
        assert_eq!(f.dur(100, 500), Duration::from_millis(500));
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!(stddev(&[2.0, 2.0, 2.0]) < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert!(mmm(&[3.0, 1.0, 2.0]).contains("med=  2.00"));
        // Even sample count: mmm's median is the shared nearest-rank
        // definition (lower middle), not the old upper-middle v[len/2].
        assert!(mmm(&[4.0, 3.0, 2.0, 1.0]).contains("med=  2.00"));
        assert_eq!(mmm(&[]), "(no samples)");
    }
}
