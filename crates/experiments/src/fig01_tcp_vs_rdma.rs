//! Figure 1: TCP vs RDMA throughput, CPU utilization, and latency as a
//! function of message size — from the host-stack cost model (the
//! hardware measurement is substituted; see DESIGN.md).

use crate::common::banner;
use baselines::hostmodel::{
    latency_us, rdma_client_stack, rdma_send_stack, rdma_server_stack, tcp_stack, throughput,
    Machine, FIG1_SIZES,
};

/// Runs the experiment.
pub fn run(_quick: bool) {
    banner(
        "fig1",
        "TCP vs RDMA: throughput / CPU / latency by message size",
    );
    let m = Machine::paper_testbed();
    println!("(a,b) throughput and mean CPU utilization:");
    println!(
        "{:>10} | {:>9} {:>7} | {:>9} {:>10} {:>10}",
        "msg size", "TCP Gbps", "TCP cpu", "RDMA Gbps", "RDMA cl cpu", "RDMA sv cpu"
    );
    for &s in &FIG1_SIZES {
        let t = throughput(&tcp_stack(), &m, s);
        let rc = throughput(&rdma_client_stack(), &m, s);
        let rs = throughput(&rdma_server_stack(), &m, s);
        println!(
            "{:>9}K | {:>9.1} {:>6.1}% | {:>9.1} {:>9.2}% {:>9.2}%",
            s / 1024,
            t.gbps,
            t.cpu_percent,
            rc.gbps,
            rc.cpu_percent,
            rs.cpu_percent
        );
    }
    println!();
    println!("(c) user-level latency, 2 KB transfer (paper: 25.4 / 1.7 / 2.8 µs):");
    println!(
        "  TCP: {:.1} µs   RDMA read/write: {:.1} µs   RDMA send: {:.1} µs",
        latency_us(&tcp_stack(), &m, 2048),
        latency_us(&rdma_client_stack(), &m, 2048),
        latency_us(&rdma_send_stack(), &m, 2048)
    );
}
