//! Fault-injection experiments: what the paper's fabric does when things
//! break. Neither figure exists in the paper — §6.3's PFC storm anecdote
//! and the deployment experience in §7 motivate both.

use crate::common::{banner, CcChoice, RunScale};
use crate::report;
use crate::runner::par_map;
use crate::scenarios::{link_flap_run, pause_storm_victim_run};
use netsim::switch::PfcWatchdogConfig;
use netsim::telemetry::Json;
use netsim::units::{Duration, Time};

/// `ext-linkflap`: a T1–L1 fabric link flaps mid-run under eight greedy
/// inter-pod flows. With route failover the aggregate goodput dips for
/// about one RTO and recovers on the surviving ECMP member; without it,
/// the flows hashed onto the dead next-hop back off exponentially and
/// abort, permanently losing their share.
pub fn link_flap(quick: bool) {
    banner(
        "ext-linkflap",
        "goodput dip + recovery across a fabric link flap",
    );
    let scale = RunScale { quick };
    let duration = scale.dur(16, 24);
    let down_at = Time::from_millis(4);
    let up_at = Time::ZERO + duration - Duration::from_millis(6);
    let variants = [("failover", true), ("static routes", false)];
    let results = par_map(&variants, |&(_, failover)| {
        link_flap_run(CcChoice::None, failover, 7, down_at, up_at, duration)
    });
    let nbins = results[0].bins.len();
    println!(
        "aggregate goodput (Gbps) per 1 ms bin; link down at 4 ms, up at {} ms",
        (up_at - Time::ZERO).as_secs_f64() * 1e3
    );
    print!("{:<14} |", "ms");
    for i in 0..nbins {
        print!(" {i:>5}");
    }
    println!();
    for ((label, _), r) in variants.iter().zip(&results) {
        print!("{label:<14} |");
        for b in &r.bins {
            print!(" {b:>5.1}");
        }
        println!();
    }
    for ((label, _), r) in variants.iter().zip(&results) {
        println!(
            "{label:<14} | aborts {:>2}  reroutes {:>2}  wire drops {:>6}",
            r.aborts, r.reroutes, r.link_drops
        );
    }
    // The headline claims, checked against the telemetry registry (the
    // counters the scenario now reads directly, not the packet trace):
    // the flap really dropped frames in both variants, failover kept
    // every QP alive, and static routing tore down the stranded ones.
    assert!(
        results.iter().all(|r| r.link_drops > 0),
        "telemetry fault_drops: the down window must drop traffic"
    );
    assert_eq!(
        results[0].aborts, 0,
        "telemetry qp_teardowns: failover must keep QPs alive"
    );
    assert!(
        results[1].aborts > 0,
        "telemetry qp_teardowns: static routes must strand QPs"
    );
    report::put(
        "variants",
        Json::Arr(
            variants
                .iter()
                .zip(&results)
                .map(|(&(label, failover), r)| {
                    Json::obj(vec![
                        ("label", Json::from(label)),
                        ("failover", Json::from(failover)),
                        ("goodput_gbps_per_ms", Json::from(r.bins.clone())),
                        ("aborts", Json::from(r.aborts)),
                        ("reroutes", Json::from(r.reroutes)),
                        ("link_drops", Json::from(r.link_drops)),
                        ("telemetry", r.telemetry.clone()),
                    ])
                })
                .collect::<Vec<_>>(),
        ),
    );
    println!("failover converges onto T1's surviving uplink and recovers the full");
    println!("aggregate; static routing strands the flows hashed onto the dead");
    println!("next-hop until their QPs tear down.");
}

/// `ext-pausestorm`: a malfunctioning NIC pause-storms its access link
/// (the §6.3/§7 failure mode). The storm freezes its ToR's egress port,
/// and PFC backpressure spreads hop by hop until a victim flow two pods
/// away stalls — unless a storm watchdog breaks the chain at its root.
pub fn pause_storm(quick: bool) {
    banner(
        "ext-pausestorm",
        "malfunctioning-NIC pause storm: watchdog vs victim collapse",
    );
    let scale = RunScale { quick };
    let duration = scale.dur(12, 20);
    let storm_from = Time::from_millis(2);
    let storm_until = Time::ZERO + duration - Duration::from_millis(4);
    let wd = PfcWatchdogConfig {
        threshold: Duration::from_micros(200),
        recovery: Duration::from_micros(800),
    };
    let grid: Vec<(&str, CcChoice, Option<PfcWatchdogConfig>)> = vec![
        ("PFC only", CcChoice::None, None),
        ("PFC+watchdog", CcChoice::None, Some(wd)),
        ("DCQCN", CcChoice::dcqcn_paper(), None),
        ("DCQCN+watchdog", CcChoice::dcqcn_paper(), Some(wd)),
    ];
    let results = par_map(&grid, |&(_, cc, watchdog)| {
        pause_storm_victim_run(cc, watchdog, 11, storm_from, storm_until, duration)
    });
    println!(
        "{:<15} | {:>12} {:>11} | {:>10} {:>6} {:>8}",
        "scheme", "storm (Gbps)", "after", "spine PAUSE", "trips", "restores"
    );
    for ((label, _, _), r) in grid.iter().zip(&results) {
        println!(
            "{:<15} | {:>12.2} {:>11.2} | {:>10} {:>6} {:>8}",
            label,
            r.victim_storm_gbps,
            r.victim_after_gbps,
            r.spine_pause_rx,
            r.watchdog_trips,
            r.watchdog_restores
        );
    }
    // Checked against the telemetry registry's watchdog counters: every
    // watchdog-equipped variant trips (and later restores), and no
    // watchdog-less variant can.
    for ((label, _, watchdog), r) in grid.iter().zip(&results) {
        if watchdog.is_some() {
            assert!(
                r.watchdog_trips > 0,
                "telemetry watchdog_trips: {label} must trip under the storm"
            );
            assert!(
                r.watchdog_restores > 0,
                "telemetry watchdog_restores: {label} must recover"
            );
        } else {
            assert_eq!(
                r.watchdog_trips, 0,
                "telemetry watchdog_trips: {label} has no watchdog"
            );
        }
    }
    report::put(
        "variants",
        Json::Arr(
            grid.iter()
                .zip(&results)
                .map(|((label, _, watchdog), r)| {
                    Json::obj(vec![
                        ("label", Json::from(*label)),
                        ("watchdog", Json::from(watchdog.is_some())),
                        ("victim_storm_gbps", Json::from(r.victim_storm_gbps)),
                        ("victim_after_gbps", Json::from(r.victim_after_gbps)),
                        ("spine_pause_rx", Json::from(r.spine_pause_rx)),
                        ("watchdog_trips", Json::from(r.watchdog_trips)),
                        ("watchdog_restores", Json::from(r.watchdog_restores)),
                        ("telemetry", r.telemetry.clone()),
                    ])
                })
                .collect::<Vec<_>>(),
        ),
    );
    println!("the storm's backpressure creeps from the frozen ToR port to the");
    println!("victim's uplinks — and because a dead NIC never sends RESUME, no");
    println!("watchdog means no recovery: the victim stays at zero even after");
    println!("the storm ends. DCQCN's ECN loop drains the senders and softens");
    println!("the collapse while the storm runs, but only the watchdog breaks");
    println!("the chain at its root and keeps service alive.");
}

/// Runs both fault experiments.
pub fn run_all(quick: bool) {
    link_flap(quick);
    pause_storm(quick);
}
