//! Figure 4: the victim-flow problem — a flow (VS→VR) whose path shares
//! no link with the incast bottleneck still collapses, because PAUSEs
//! cascade from T4 up through the spines and down to T1's uplinks.

use crate::common::{banner, mmm, CcChoice, RunScale};
use crate::scenarios::victim_run;
use netsim::units::Duration;

/// Runs the scenario and prints the victim's median goodput per
/// T3-sender count.
pub fn run_with(cc: CcChoice, scale: RunScale) {
    let seeds = scale.seeds(3, 15);
    let duration = scale.dur(150, 250);
    let warmup = Duration::from_millis(scale.pick(50, 80));
    let (extra_dur, extra_warm) = match cc {
        CcChoice::Dcqcn(_) => (Duration::from_millis(200), Duration::from_millis(150)),
        _ => (Duration::ZERO, Duration::ZERO),
    };
    println!("victim (VS→VR) goodput vs number of senders under T3 (Gbps):");
    for t3 in [0usize, 1, 2] {
        let g: Vec<f64> = seeds
            .iter()
            .map(|&s| victim_run(cc, t3, s, duration + extra_dur, warmup + extra_warm))
            .collect();
        println!("  {t3} senders under T3: {}", mmm(&g));
    }
}

/// Runs the experiment.
pub fn run(quick: bool) {
    banner("fig4", "victim flow (no congestion control)");
    run_with(CcChoice::None, RunScale { quick });
}
