//! Figure 4: the victim-flow problem — a flow (VS→VR) whose path shares
//! no link with the incast bottleneck still collapses, because PAUSEs
//! cascade from T4 up through the spines and down to T1's uplinks.

use crate::common::{banner, breakdown_json, mmm, print_breakdown, CcChoice, RunScale};
use crate::report;
use crate::runner::par_map;
use crate::scenarios::{attribution_run, victim_run};
use netsim::telemetry::{Json, SpanState};
use netsim::units::{Duration, Time};

/// Runs the scenario and prints the victim's median goodput per
/// T3-sender count.
pub fn run_with(cc: CcChoice, scale: RunScale) {
    let seeds = scale.seeds(3, 15);
    let duration = scale.dur(150, 250);
    let warmup = Duration::from_millis(scale.pick(50, 80));
    let (extra_dur, extra_warm) = match cc {
        CcChoice::Dcqcn(_) => (Duration::from_millis(200), Duration::from_millis(150)),
        _ => (Duration::ZERO, Duration::ZERO),
    };
    // Fan the whole (t3 × seed) grid out at once so threads stay busy
    // across row boundaries, then print grouped per row.
    let t3_counts = [0usize, 1, 2];
    let grid: Vec<(usize, u64)> = t3_counts
        .iter()
        .flat_map(|&t3| seeds.iter().map(move |&s| (t3, s)))
        .collect();
    let results = par_map(&grid, |&(t3, s)| {
        victim_run(cc, t3, s, duration + extra_dur, warmup + extra_warm)
    });
    println!("victim (VS→VR) goodput vs number of senders under T3 (Gbps):");
    report::put("scheme", Json::from(cc.label()));
    let mut rows = Vec::new();
    for (row, t3) in t3_counts.iter().enumerate() {
        let g = &results[row * seeds.len()..(row + 1) * seeds.len()];
        println!("  {t3} senders under T3: {}", mmm(g));
        rows.push(Json::obj(vec![
            ("t3_senders", Json::from(*t3)),
            ("victim_goodput_gbps", Json::from(g.to_vec())),
        ]));
    }
    report::put("rows", Json::Arr(rows));

    // Causal attribution (serial, one seed): decompose the victim's FCT
    // into named causes with the worst-case incast (2 senders under T3)
    // and check the scheme's signature — PFC alone leaves the victim
    // pause-blocked; an end-to-end scheme shifts that time into
    // rate-limiter throttling.
    let att = attribution_run(
        cc,
        2,
        1_000_000,
        seeds[0],
        Time::ZERO + warmup + extra_warm,
        duration + extra_dur,
    );
    assert!(att.completed, "victim's finite message must complete");
    println!(
        "victim FCT attribution (2 senders under T3, seed {}):",
        seeds[0]
    );
    print_breakdown(&att.breakdown, att.fct);
    let blocked = att.breakdown[SpanState::PauseBlocked as usize];
    let throttled = att.breakdown[SpanState::Throttled as usize];
    match cc {
        CcChoice::None => assert!(
            blocked > throttled,
            "PFC-only victim must be dominated by pause_blocked \
             ({blocked} vs throttled {throttled})"
        ),
        CcChoice::Dcqcn(_) => assert!(
            throttled > blocked,
            "DCQCN victim must be dominated by throttled \
             ({throttled} vs pause_blocked {blocked})"
        ),
        _ => {}
    }
    if let Some(root) = att.tree.roots.first() {
        println!(
            "  congestion root: node {} port {} ({} victim flows)",
            root.node.0,
            root.port.0,
            att.tree.victims.len()
        );
    }
    report::put("victim_fct_us", Json::from(att.fct.as_micros_f64()));
    report::put("victim_breakdown_us", breakdown_json(&att.breakdown));
    report::put("congestion_tree", att.tree.to_json());
    report::put_trace(&att.trace);
}

/// Runs the experiment.
pub fn run(quick: bool) {
    banner("fig4", "victim flow (no congestion control)");
    run_with(CcChoice::None, RunScale { quick });
}
