//! Figure 4: the victim-flow problem — a flow (VS→VR) whose path shares
//! no link with the incast bottleneck still collapses, because PAUSEs
//! cascade from T4 up through the spines and down to T1's uplinks.

use crate::common::{banner, mmm, CcChoice, RunScale};
use crate::report;
use crate::runner::par_map;
use crate::scenarios::victim_run;
use netsim::telemetry::Json;
use netsim::units::Duration;

/// Runs the scenario and prints the victim's median goodput per
/// T3-sender count.
pub fn run_with(cc: CcChoice, scale: RunScale) {
    let seeds = scale.seeds(3, 15);
    let duration = scale.dur(150, 250);
    let warmup = Duration::from_millis(scale.pick(50, 80));
    let (extra_dur, extra_warm) = match cc {
        CcChoice::Dcqcn(_) => (Duration::from_millis(200), Duration::from_millis(150)),
        _ => (Duration::ZERO, Duration::ZERO),
    };
    // Fan the whole (t3 × seed) grid out at once so threads stay busy
    // across row boundaries, then print grouped per row.
    let t3_counts = [0usize, 1, 2];
    let grid: Vec<(usize, u64)> = t3_counts
        .iter()
        .flat_map(|&t3| seeds.iter().map(move |&s| (t3, s)))
        .collect();
    let results = par_map(&grid, |&(t3, s)| {
        victim_run(cc, t3, s, duration + extra_dur, warmup + extra_warm)
    });
    println!("victim (VS→VR) goodput vs number of senders under T3 (Gbps):");
    report::put("scheme", Json::from(cc.label()));
    let mut rows = Vec::new();
    for (row, t3) in t3_counts.iter().enumerate() {
        let g = &results[row * seeds.len()..(row + 1) * seeds.len()];
        println!("  {t3} senders under T3: {}", mmm(g));
        rows.push(Json::obj(vec![
            ("t3_senders", Json::from(*t3)),
            ("victim_goodput_gbps", Json::from(g.to_vec())),
        ]));
    }
    report::put("rows", Json::Arr(rows));
}

/// Runs the experiment.
pub fn run(quick: bool) {
    banner("fig4", "victim flow (no congestion control)");
    run_with(CcChoice::None, RunScale { quick });
}
