//! Figure 6: the NP state machine — CNP pacing demonstrated on a
//! synthetic stream of marked packets.

use crate::common::banner;
use dcqcn::np::NpState;
use netsim::units::Time;

/// Runs the experiment.
pub fn run(_quick: bool) {
    banner("fig6", "NP state machine: one CNP per flow per 50 µs");
    let mut np = NpState::paper();
    let mut cnps = Vec::new();
    // A congested period: every arriving packet marked, one per µs.
    for us in 0..200u64 {
        if np.on_packet(Time::from_micros(us), true) {
            cnps.push(us);
        }
    }
    println!("200 µs of continuously marked arrivals -> CNPs at t(µs) = {cnps:?}");
    assert_eq!(cnps, vec![0, 50, 100, 150]);
    // Congestion clears: no marks, no feedback.
    let mut quiet = 0;
    for us in 200..400u64 {
        if np.on_packet(Time::from_micros(us), false) {
            quiet += 1;
        }
    }
    println!("200 µs of unmarked arrivals -> {quiet} CNPs (no feedback without congestion)");
}
