//! `repro compare` — cross-run regression diffing of telemetry JSON
//! reports — and `repro bench-trajectory`, the `BENCH_*.json` speed
//! history check.
//!
//! `compare` walks two reports produced by `repro <id> --json <dir>` (or
//! any [`Json`] documents) key by key and reports every leaf that
//! differs beyond the configured tolerances. Machine-dependent keys
//! (`wall_ms`, `events_per_sec`, `allocations`, `peak_pending_events`)
//! are ignored by default so two snapshots of the *same simulated work*
//! taken on different machines self-compare clean; everything else in a
//! report is deterministic and diffs exact by default. Exit status: 0
//! when the reports match within tolerance, 1 when they differ — made
//! for CI gates (`repro compare old.json new.json || fail`).
//!
//! `bench-trajectory` reads every `BENCH_<label>.json` snapshot in a
//! directory (see [`crate::bench_core`]), orders them by label, and
//! warns when a consecutive pair that timed identical work (matching
//! `quick` flag and per-scenario checksums) lost more than 10% of its
//! `events_per_sec`. With `--strict` a warning is an error.

use netsim::telemetry::Json;
use std::path::Path;

/// Keys whose values are machine-dependent in otherwise-deterministic
/// reports; ignored by default so self-comparison across machines holds.
pub const DEFAULT_IGNORE: [&str; 4] = [
    "wall_ms",
    "events_per_sec",
    "allocations",
    "peak_pending_events",
];

/// Fractional `events_per_sec` drop between consecutive comparable
/// snapshots that triggers a trajectory warning.
const TRAJECTORY_DROP: f64 = 0.10;

/// Numeric and key-ignore tolerances for [`diff`].
pub struct Tolerances {
    /// Allowed relative difference, in percent of `max(|a|, |b|)`.
    pub rel_pct: f64,
    /// Allowed absolute difference.
    pub abs: f64,
    /// Object keys skipped wherever they appear in the tree.
    pub ignore: Vec<String>,
}

impl Default for Tolerances {
    fn default() -> Tolerances {
        Tolerances {
            rel_pct: 0.0,
            abs: 0.0,
            ignore: DEFAULT_IGNORE.iter().map(|s| s.to_string()).collect(),
        }
    }
}

impl Tolerances {
    fn within(&self, a: f64, b: f64) -> bool {
        let d = (a - b).abs();
        if d <= self.abs {
            return true;
        }
        let scale = a.abs().max(b.abs());
        scale > 0.0 && d / scale * 100.0 <= self.rel_pct
    }
}

/// One leaf-level difference between two documents.
pub struct Diff {
    /// Dotted path to the differing node (`scenarios[1].checksum`).
    pub path: String,
    /// Human-readable `a vs b` description.
    pub detail: String,
}

fn num(j: &Json) -> Option<f64> {
    match *j {
        Json::Int(i) => Some(i as f64),
        Json::UInt(u) => Some(u as f64),
        Json::Float(f) => Some(f),
        _ => None,
    }
}

fn walk(a: &Json, b: &Json, path: &str, tol: &Tolerances, out: &mut Vec<Diff>) {
    // Numbers compare numerically across Int/UInt/Float so a value that
    // crosses an integer/float boundary between runs still matches.
    if let (Some(x), Some(y)) = (num(a), num(b)) {
        if !tol.within(x, y) {
            out.push(Diff {
                path: path.to_string(),
                detail: format!("{x} vs {y}"),
            });
        }
        return;
    }
    match (a, b) {
        (Json::Obj(pa), Json::Obj(pb)) => {
            for (k, va) in pa {
                if tol.ignore.iter().any(|i| i == k) {
                    continue;
                }
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                match b.get(k) {
                    Some(vb) => walk(va, vb, &sub, tol, out),
                    None => out.push(Diff {
                        path: sub,
                        detail: "missing in b".to_string(),
                    }),
                }
            }
            for (k, _) in pb {
                if tol.ignore.iter().any(|i| i == k) || a.get(k).is_some() {
                    continue;
                }
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                out.push(Diff {
                    path: sub,
                    detail: "missing in a".to_string(),
                });
            }
        }
        (Json::Arr(xa), Json::Arr(xb)) => {
            if xa.len() != xb.len() {
                out.push(Diff {
                    path: path.to_string(),
                    detail: format!("array length {} vs {}", xa.len(), xb.len()),
                });
                return;
            }
            for (i, (va, vb)) in xa.iter().zip(xb).enumerate() {
                walk(va, vb, &format!("{path}[{i}]"), tol, out);
            }
        }
        _ if a == b => {}
        _ => out.push(Diff {
            path: path.to_string(),
            detail: format!("{} vs {}", a.render().trim(), b.render().trim()),
        }),
    }
}

/// Recursively diffs two documents; an empty result means they match
/// within `tol`.
pub fn diff(a: &Json, b: &Json, tol: &Tolerances) -> Vec<Diff> {
    let mut out = Vec::new();
    walk(a, b, "", tol, &mut out);
    out
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// `repro compare a.json b.json [--rel-pct <p>] [--abs <v>] [--ignore <key>]`.
/// Extra `--ignore` keys add to [`DEFAULT_IGNORE`]. Exit status 2 on
/// usage/IO errors, 1 when the reports differ, 0 when they match.
pub fn cli(args: &[String]) -> i32 {
    let mut tol = Tolerances::default();
    let mut files: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rel-pct" | "--abs" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("{a} requires a number");
                    return 2;
                };
                if a == "--rel-pct" {
                    tol.rel_pct = v;
                } else {
                    tol.abs = v;
                }
            }
            "--ignore" => match it.next() {
                Some(k) => tol.ignore.push(k.clone()),
                None => {
                    eprintln!("--ignore requires a key name");
                    return 2;
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag '{flag}'");
                return 2;
            }
            f => files.push(f),
        }
    }
    let [fa, fb] = files[..] else {
        eprintln!(
            "usage: repro compare <a.json> <b.json> [--rel-pct <p>] [--abs <v>] [--ignore <key>]"
        );
        return 2;
    };
    let (a, b) = match (load(fa), load(fb)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let diffs = diff(&a, &b, &tol);
    if diffs.is_empty() {
        println!("compare: {fa} and {fb} match within tolerance");
        0
    } else {
        for d in &diffs {
            println!("DIFF {}: {}", d.path, d.detail);
        }
        println!(
            "compare: {} difference(s) between {fa} and {fb}",
            diffs.len()
        );
        1
    }
}

/// Splits a label into digit/non-digit runs so `pr10` orders after
/// `pr9`.
fn natural_key(label: &str) -> Vec<(bool, String)> {
    let mut parts: Vec<(bool, String)> = Vec::new();
    for c in label.chars() {
        let digit = c.is_ascii_digit();
        match parts.last_mut() {
            Some((d, run)) if *d == digit => run.push(c),
            _ => parts.push((digit, c.to_string())),
        }
    }
    // Left-pad digit runs so lexicographic comparison is numeric.
    for (d, run) in &mut parts {
        if *d {
            *run = format!("{run:0>20}");
        }
    }
    parts
}

struct Snapshot {
    label: String,
    quick: bool,
    /// Per-scenario `(name, checksum, events_per_sec)`.
    scenarios: Vec<(String, f64, f64)>,
}

fn read_snapshot(path: &Path) -> Result<Snapshot, String> {
    let doc = load(&path.display().to_string())?;
    let label = doc
        .get("label")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{}: no label", path.display()))?
        .to_string();
    let quick = matches!(doc.get("quick"), Some(Json::Bool(true)));
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|s| {
            Some((
                s.get("name")?.as_str()?.to_string(),
                num(s.get("checksum")?)?,
                num(s.get("events_per_sec")?)?,
            ))
        })
        .collect();
    Ok(Snapshot {
        label,
        quick,
        scenarios,
    })
}

/// Checks the `BENCH_*.json` speed history in `dir`: consecutive
/// label-ordered snapshots that timed identical work (same `quick`, same
/// per-scenario checksum) must not lose more than 10% `events_per_sec`.
/// Returns the number of warnings (prints them as it goes).
pub fn bench_trajectory(dir: &Path) -> Result<usize, String> {
    let mut snaps: Vec<Snapshot> = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            snaps.push(read_snapshot(&path)?);
        }
    }
    snaps.sort_by_key(|s| natural_key(&s.label));
    if snaps.len() < 2 {
        println!(
            "bench-trajectory: {} snapshot(s) in {} — nothing to compare",
            snaps.len(),
            dir.display()
        );
        return Ok(0);
    }
    let mut warnings = 0;
    for pair in snaps.windows(2) {
        let (prev, next) = (&pair[0], &pair[1]);
        if prev.quick != next.quick {
            println!(
                "bench-trajectory: {} -> {}: quick flags differ, skipping",
                prev.label, next.label
            );
            continue;
        }
        for (name, checksum, rate) in &next.scenarios {
            let Some((_, prev_sum, prev_rate)) = prev.scenarios.iter().find(|(n, _, _)| n == name)
            else {
                continue;
            };
            if prev_sum != checksum {
                println!(
                    "bench-trajectory: {} -> {} {name}: checksums differ ({prev_sum} vs {checksum}), not comparable",
                    prev.label, next.label
                );
                continue;
            }
            if *prev_rate > 0.0 && (prev_rate - rate) / prev_rate > TRAJECTORY_DROP {
                println!(
                    "WARN {} -> {} {name}: events_per_sec fell {:.1}% ({:.0} -> {:.0})",
                    prev.label,
                    next.label,
                    (prev_rate - rate) / prev_rate * 100.0,
                    prev_rate,
                    rate
                );
                warnings += 1;
            } else {
                println!(
                    "ok   {} -> {} {name}: {:.0} -> {:.0} events/sec",
                    prev.label, next.label, prev_rate, rate
                );
            }
        }
    }
    Ok(warnings)
}

/// `repro bench-trajectory <dir> [--strict]`: exit 1 on a warning only
/// under `--strict` (wall-clock noise across CI machines makes warnings
/// advisory by default).
pub fn trajectory_cli(args: &[String]) -> i32 {
    let mut strict = false;
    let mut dir: Option<&str> = None;
    for a in args {
        match a.as_str() {
            "--strict" => strict = true,
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag '{flag}'");
                return 2;
            }
            d if dir.is_none() => dir = Some(d),
            _ => {
                eprintln!("usage: repro bench-trajectory <dir> [--strict]");
                return 2;
            }
        }
    }
    let dir = dir.unwrap_or(".");
    match bench_trajectory(Path::new(dir)) {
        Ok(0) => 0,
        Ok(n) => {
            println!("bench-trajectory: {n} warning(s)");
            if strict {
                1
            } else {
                0
            }
        }
        Err(e) => {
            eprintln!("{e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::obj(pairs)
    }

    #[test]
    fn self_diff_is_empty() {
        let a = obj(vec![
            ("x", Json::Float(1.5)),
            ("wall_ms", Json::Float(100.0)),
            ("arr", Json::Arr(vec![Json::UInt(1), Json::UInt(2)])),
        ]);
        assert!(diff(&a, &a, &Tolerances::default()).is_empty());
    }

    #[test]
    fn ignored_keys_do_not_diff() {
        let a = obj(vec![("x", Json::UInt(1)), ("wall_ms", Json::Float(1.0))]);
        let b = obj(vec![("x", Json::UInt(1)), ("wall_ms", Json::Float(999.0))]);
        assert!(diff(&a, &b, &Tolerances::default()).is_empty());
    }

    #[test]
    fn numeric_regression_is_caught_and_tolerances_forgive() {
        let a = obj(vec![("goodput", Json::Float(38.0))]);
        let b = obj(vec![("goodput", Json::Float(36.0))]);
        let strict = diff(&a, &b, &Tolerances::default());
        assert_eq!(strict.len(), 1);
        assert_eq!(strict[0].path, "goodput");
        let loose = Tolerances {
            rel_pct: 10.0,
            ..Tolerances::default()
        };
        assert!(diff(&a, &b, &loose).is_empty());
        let abs = Tolerances {
            abs: 2.5,
            ..Tolerances::default()
        };
        assert!(diff(&a, &b, &abs).is_empty());
    }

    #[test]
    fn missing_keys_and_int_float_cross_type() {
        let a = obj(vec![("x", Json::UInt(2)), ("only_a", Json::UInt(1))]);
        let b = obj(vec![("x", Json::Float(2.0)), ("only_b", Json::UInt(1))]);
        let d = diff(&a, &b, &Tolerances::default());
        // 2 and 2.0 compare equal; each one-sided key reports once.
        let paths: Vec<&str> = d.iter().map(|d| d.path.as_str()).collect();
        assert_eq!(paths, ["only_a", "only_b"]);
    }

    #[test]
    fn nested_paths_name_the_leaf() {
        let a = obj(vec![(
            "scenarios",
            Json::Arr(vec![obj(vec![("checksum", Json::Float(1.0))])]),
        )]);
        let b = obj(vec![(
            "scenarios",
            Json::Arr(vec![obj(vec![("checksum", Json::Float(2.0))])]),
        )]);
        let d = diff(&a, &b, &Tolerances::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, "scenarios[0].checksum");
    }

    #[test]
    fn natural_label_order() {
        let mut labels = ["pr10", "pr9", "pr100", "local"];
        labels.sort_by_key(|l| natural_key(l));
        assert_eq!(labels, ["local", "pr9", "pr10", "pr100"]);
    }
}
