//! Figure 20: the multi-bottleneck (parking lot) scenario — flow f2
//! crosses two bottlenecks and gets starved by cut-off marking (it is
//! twice as likely to be marked); RED-like marking mitigates this.

use crate::common::{banner, CcChoice};
use crate::runner::par_map;
use dcqcn::params::{red_deployed, DcqcnParams};
use netsim::ecn::RedConfig;
use netsim::packet::DATA_PRIORITY;
use netsim::stats::SamplerConfig;
use netsim::topology::{parking_lot, LinkParams};
use netsim::units::{Duration, Time};

/// Runs the three-flow parking lot under one marking scheme; returns
/// (f1, f2, f3) goodputs in Gbps.
fn run_one(red: RedConfig, duration: Duration, seed: u64) -> [f64; 3] {
    let cc = CcChoice::Dcqcn(DcqcnParams::paper());
    let mut sw = cc.switch_config(true, false);
    sw.red = red;
    let pl = parking_lot(LinkParams::default(), cc.host_config(), sw, seed);
    let mut net = pl.net;
    let f = cc.factory();
    let f1 = net.add_flow(pl.h1, pl.r1, DATA_PRIORITY, &f);
    let f2 = net.add_flow(pl.h2, pl.r2, DATA_PRIORITY, &f);
    let f3 = net.add_flow(pl.h3, pl.r2, DATA_PRIORITY, &f);
    for fl in [f1, f2, f3] {
        net.send_message(fl, u64::MAX, Time::ZERO);
    }
    net.enable_sampling(
        Duration::from_micros(500),
        SamplerConfig {
            all_flows: true,
            ..SamplerConfig::default()
        },
    );
    let end = Time::ZERO + duration;
    net.run_until(end);
    let from = Time::ZERO + duration / 2;
    [f1, f2, f3].map(|fl| net.goodput_gbps(fl, from, end))
}

/// Runs the experiment.
pub fn run(quick: bool) {
    banner(
        "fig20",
        "multi-bottleneck parking lot: cut-off vs RED-like marking",
    );
    let duration = Duration::from_millis(if quick { 300 } else { 700 });
    println!("f1: one bottleneck (SW1->SW2); f2: BOTH; f3: one (SW2->R2).");
    println!("max-min fair share: 20 Gbps each.");
    println!(
        "{:<22} | {:>8} {:>8} {:>8}",
        "marking", "f1 Gbps", "f2 Gbps", "f3 Gbps"
    );
    let cutoff = RedConfig::cutoff(40_000);
    let markings = [
        ("cut-off (Kmin=Kmax)", cutoff),
        ("RED-like (deployed)", red_deployed()),
    ];
    let results = par_map(&markings, |&(_, red)| run_one(red, duration, 17));
    let mut f2_rates = Vec::new();
    for ((label, _), &[g1, g2, g3]) in markings.iter().zip(&results) {
        println!("{label:<22} | {g1:>8.2} {g2:>8.2} {g3:>8.2}");
        f2_rates.push(g2);
    }
    println!(
        "f2 with RED-like marking: {:.2} Gbps vs {:.2} with cut-off — paper:",
        f2_rates[1], f2_rates[0]
    );
    println!("RED-like marking mitigates (not fully solves) the two-bottleneck penalty.");
}
