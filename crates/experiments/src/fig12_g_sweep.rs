//! Figure 12: choosing g — queue length and stability under 2:1 and 16:1
//! incast for different α-gains (fluid model).

use crate::common::banner;
use crate::runner::par_map;
use fluid::sweep::{g_queue_trace, queue_stats};

/// Runs the experiment.
pub fn run(quick: bool) {
    banner(
        "fig12",
        "g sweep: queue length/stability, 2:1 and 16:1 incast (fluid)",
    );
    let horizon = if quick { 0.25 } else { 0.5 };
    let gs: &[(f64, &str)] = if quick {
        &[(1.0 / 16.0, "1/16"), (1.0 / 256.0, "1/256")]
    } else {
        &[
            (1.0 / 16.0, "1/16"),
            (1.0 / 64.0, "1/64"),
            (1.0 / 256.0, "1/256"),
            (1.0 / 1024.0, "1/1024"),
        ]
    };
    println!(
        "{:>8} | {:>22} | {:>22} {:>8}",
        "g", "2:1 queue KB (mean±sd)", "16:1 queue KB (mean±sd)", "16:1 max"
    );
    // One fluid integration per (g, incast degree) point.
    let grid: Vec<(f64, usize)> = gs
        .iter()
        .flat_map(|&(g, _)| [(g, 2usize), (g, 16usize)])
        .collect();
    let traces = par_map(&grid, |&(g, n)| g_queue_trace(g, n, horizon));
    for (i, &(_, label)) in gs.iter().enumerate() {
        let t2 = &traces[2 * i];
        let t16 = &traces[2 * i + 1];
        let (m2, s2) = queue_stats(t2, horizon / 2.0);
        let (m16, s16) = queue_stats(t16, horizon / 2.0);
        let max16 = t16
            .times
            .iter()
            .zip(&t16.queue_kb)
            .filter(|(t, _)| **t >= horizon / 2.0)
            .map(|(_, q)| *q)
            .fold(0.0f64, f64::max);
        println!(
            "{label:>8} | {:>13.1} ± {:>6.1} | {:>13.1} ± {:>6.1} {:>8.1}",
            m2, s2, m16, s16, max16
        );
    }
    println!("paper: smaller g -> lower queue and lower oscillation, at slightly");
    println!("slower convergence; g = 1/256 deployed. In our reading of the");
    println!("equations 2:1 is rock-stable for every g, while 16:1 rides the");
    println!("K_max cliff for every g (the fixed point wants p* > P_max) with a");
    println!("slightly lower peak for smaller g — see EXPERIMENTS.md.");
}
