//! Figure 16: benchmark traffic — median and 10th-percentile throughput
//! of user and incast (disk-rebuild) flows as the incast degree grows,
//! with and without DCQCN.

use crate::common::{banner, CcChoice, RunScale};
use crate::report;
use crate::runner::par_map;
use crate::scenarios::{benchmark_run, BenchmarkConfig};
use netsim::stats::percentile;
use netsim::telemetry::Json;

/// Runs the experiment.
pub fn run(quick: bool) {
    banner(
        "fig16",
        "benchmark traffic vs incast degree (user + rebuild flows)",
    );
    let scale = RunScale { quick };
    let duration = scale.dur(300, 800);
    let seeds = scale.seeds(1, 3);
    let degrees: &[usize] = if quick {
        &[2, 6, 10]
    } else {
        &[2, 4, 6, 8, 10]
    };
    println!(
        "{:>7} {:>9} | {:>9} {:>9} | {:>10} {:>10} | {:>8}",
        "degree", "scheme", "user med", "user 10th", "incast med", "incast 10th", "pauses"
    );
    // Flatten the full (degree × scheme × seed) grid into one fan-out so
    // every core stays busy, then aggregate per table row in order.
    let ccs = [CcChoice::None, CcChoice::dcqcn_paper()];
    let grid: Vec<(usize, CcChoice, u64)> = degrees
        .iter()
        .flat_map(|&deg| {
            let seeds = &seeds;
            ccs.iter()
                .flat_map(move |&cc| seeds.iter().map(move |&seed| (deg, cc, seed)))
        })
        .collect();
    let runs = par_map(&grid, |&(deg, cc, seed)| {
        benchmark_run(&BenchmarkConfig {
            cc,
            pairs: 20,
            incast_degree: deg,
            duration,
            pfc: true,
            misconfigured: false,
            nack_enabled: true,
            seed,
        })
    });
    let mut rows = Vec::new();
    for (row, chunk) in runs.chunks(seeds.len()).enumerate() {
        let (deg, cc, _) = grid[row * seeds.len()];
        let mut user = Vec::new();
        let mut incast = Vec::new();
        let mut pauses = 0;
        let (mut drops, mut retx, mut aborted) = (0, 0, 0);
        for r in chunk {
            user.extend(r.user_goodputs.iter().copied());
            incast.extend(r.incast_goodputs.iter().copied());
            pauses += r.spine_pause_rx;
            drops += r.drops;
            retx += r.retx;
            aborted += r.aborted;
        }
        println!(
            "{:>7} {:>9} | {:>9.2} {:>9.2} | {:>10.2} {:>10.2} | {:>8}",
            deg,
            cc.label(),
            percentile(&user, 50.0),
            percentile(&user, 10.0),
            percentile(&incast, 50.0),
            percentile(&incast, 10.0),
            pauses
        );
        rows.push(Json::obj(vec![
            ("incast_degree", Json::from(deg)),
            ("scheme", Json::from(cc.label())),
            ("user_med_gbps", Json::from(percentile(&user, 50.0))),
            ("user_p10_gbps", Json::from(percentile(&user, 10.0))),
            ("incast_med_gbps", Json::from(percentile(&incast, 50.0))),
            ("incast_p10_gbps", Json::from(percentile(&incast, 10.0))),
            ("spine_pause_rx", Json::from(pauses)),
            ("drops", Json::from(drops)),
            ("retx_pkts", Json::from(retx)),
            ("aborted_flows", Json::from(aborted)),
        ]));
    }
    report::put("rows", Json::Arr(rows));
    println!("paper: without DCQCN user throughput collapses as degree grows (PAUSE");
    println!("cascades); with DCQCN it is flat, and incast tail gets its fair share");
    println!("(~40/degree Gbps).");
}
