//! Figure 14: the deployed DCQCN parameter table.

use crate::common::banner;
use dcqcn::params::{red_deployed, DcqcnParams};

/// Runs the experiment.
pub fn run(_quick: bool) {
    banner("fig14", "deployed DCQCN parameters");
    let p = DcqcnParams::paper();
    let r = red_deployed();
    println!("  rate-increase timer T : {}", p.rate_timer);
    println!(
        "  byte counter B        : {} MB",
        p.byte_counter / 1_000_000
    );
    println!("  K_max                 : {} KB", r.kmax_bytes / 1000);
    println!("  K_min                 : {} KB", r.kmin_bytes / 1000);
    println!("  P_max                 : {}%", r.pmax * 100.0);
    println!("  g                     : 1/{}", (1.0 / p.g).round());
    println!("  (CNP interval N       : {})", p.cnp_interval);
    println!("  (alpha timer K        : {})", p.alpha_timer);
    println!("  (R_AI                 : {})", p.rai);
    println!("  (F                    : {})", p.fast_recovery_steps);
}
