//! Figure 19: egress queue-length CDF at the congested port during the
//! §6.3 2:1 incast microbenchmark — DCQCN (shallow K_min, hardware
//! pacing) vs DCTCP (deep cut-off threshold to absorb software bursts).
//! Deeper incasts are printed as an extension: past ~8:1 the deployed
//! parameters operate at the K_max cliff (the fluid fixed point wants
//! p* > P_max), so the DCQCN tail grows.

use crate::common::{banner, CcChoice, RunScale};
use crate::report;
use crate::runner::par_map;
use baselines::dctcp::DctcpParams;
use netsim::event::PortId;
use netsim::packet::DATA_PRIORITY;
use netsim::stats::SamplerConfig;
use netsim::topology::{star, LinkParams, Star};
use netsim::units::{Duration, Time};

/// Builds and runs an `n`:1 incast with queue sampling at the receiver's
/// switch port, returning the star and the sampled port.
fn incast_sim(cc: CcChoice, n: usize, duration: Duration, seed: u64) -> (Star, PortId) {
    let mut s = star(
        n + 1,
        LinkParams::default(),
        cc.host_config(),
        cc.switch_config(true, false),
        seed,
    );
    let dst = s.hosts[n];
    let f = cc.factory();
    for i in 0..n {
        let fl = s.net.add_flow(s.hosts[i], dst, DATA_PRIORITY, &f);
        s.net.send_message(fl, u64::MAX, Time::ZERO);
    }
    // The receiver's link was added last: its switch port index is n.
    let port = PortId(n);
    s.net.enable_sampling(
        Duration::from_micros(10),
        SamplerConfig {
            queues: vec![(s.switch, port)],
            ..SamplerConfig::default()
        },
    );
    s.net.run_until(Time::ZERO + duration);
    (s, port)
}

/// Runs an `n`:1 incast and returns queue-depth tail stats (KB) at the
/// receiver's switch port: `[p50, p90, p99, mean]`, taken over the
/// sampled timeline after the line-rate-start transient.
fn queue_stats(cc: CcChoice, n: usize, duration: Duration, seed: u64) -> [f64; 4] {
    let (s, port) = incast_sim(cc, n, duration, seed);
    // Skip the line-rate-start transient.
    let cut = Time::ZERO + duration / 4;
    let tl = s.net.queue_timeline(s.switch, port).expect("sampled port");
    [
        tl.weighted_percentile(50.0, cut) / 1000.0,
        tl.weighted_percentile(90.0, cut) / 1000.0,
        tl.weighted_percentile(99.0, cut) / 1000.0,
        tl.mean_from(cut) / 1000.0,
    ]
}

/// Runs the experiment.
pub fn run(quick: bool) {
    banner("fig19", "queue-length CDF: DCQCN vs DCTCP, 2:1 incast");
    let scale = RunScale { quick };
    let duration = scale.dur(150, 400);
    println!(
        "{:>6} {:<8} | {:>8} {:>8} {:>8} {:>8}",
        "incast", "scheme", "p50 KB", "p90 KB", "p99 KB", "mean KB"
    );
    let mut p90 = Vec::new();
    let depths: &[usize] = if quick { &[2] } else { &[2, 4, 8, 20] };
    let ccs = [
        CcChoice::dcqcn_paper(),
        CcChoice::Dctcp(DctcpParams::default_40g()),
    ];
    let grid: Vec<(usize, CcChoice)> = depths
        .iter()
        .flat_map(|&n| ccs.iter().map(move |&cc| (n, cc)))
        .collect();
    let stats = par_map(&grid, |&(n, cc)| queue_stats(cc, n, duration, 3));
    for (&(n, cc), &[p50, p90v, p99, mean]) in grid.iter().zip(&stats) {
        println!(
            "{:>4}:1 {:<8} | {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            n,
            cc.label(),
            p50,
            p90v,
            p99,
            mean
        );
        if n == 2 {
            p90.push(p90v);
        }
    }
    println!(
        "2:1, 90th percentile: DCQCN {:.1} KB vs DCTCP {:.1} KB (paper: 76.6 vs 162.9)",
        p90[0], p90[1]
    );
    println!("DCTCP rides its 160 KB cut-off threshold; DCQCN's hardware pacing");
    println!("permits the shallow 5 KB K_min and a far shorter queue.");
    if report::dash_enabled() {
        // Serial representative rerun (2:1 DCQCN) on the dispatch thread,
        // so the dashboard bytes cannot depend on REPRO_THREADS.
        let (s, _) = incast_sim(CcChoice::dcqcn_paper(), 2, duration, 3);
        report::put_dash(&s.net.dashboard("fig19: 2:1 incast, DCQCN"));
    }
}
