//! The parallel run harness: fan independent simulation runs out across
//! cores.
//!
//! Every experiment repeats the same simulation over independent inputs —
//! ECMP seeds, parameter points, schemes. Each run is a pure function of
//! its configuration and seed (`netsim`'s event queue is deterministic and
//! every random draw comes from a per-run `SplitMix64`), so runs share no
//! state and can execute in any order on any thread. The harness exploits
//! exactly that: [`par_map`] executes one closure per input on a scoped
//! worker pool and reassembles results **in input order**, so the printed
//! tables are byte-identical to a serial run — a property
//! `tests/determinism.rs` asserts.
//!
//! Thread count: `min(available cores, number of runs)`, overridable with
//! the `REPRO_THREADS` environment variable (`REPRO_THREADS=1` forces the
//! serial path; useful for timing comparisons and debugging).
//!
//! This is plain `std::thread::scope` rather than rayon: the container
//! this repo builds in has no crates.io access, and a work-stealing pool
//! buys nothing for coarse-grained whole-simulation tasks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads [`par_map`] uses for `runs` independent runs.
///
/// `REPRO_THREADS` (≥ 1) overrides the detected core count. An invalid
/// value (`0`, empty, or unparseable) aborts the process with a clear
/// error instead of silently falling back to all cores: someone setting
/// `REPRO_THREADS=0` while chasing a determinism bug means "serial", and
/// granting them 32 threads instead is the worst possible surprise.
pub fn thread_count(runs: usize) -> usize {
    let cores = match parse_repro_threads(std::env::var("REPRO_THREADS").ok().as_deref()) {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    cores.min(runs.max(1))
}

/// Parses a `REPRO_THREADS` value: `None` when unset (use detected
/// cores), `Some(n)` for a valid override, `Err` for anything else.
fn parse_repro_threads(var: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = var else {
        return Ok(None);
    };
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        Ok(_) => Err(format!(
            "REPRO_THREADS={raw}: thread count must be >= 1 (use 1 for a serial run)"
        )),
        Err(_) => Err(format!(
            "REPRO_THREADS={raw:?}: expected a positive integer thread count"
        )),
    }
}

/// Runs `f` over every item, in parallel, returning results in item order.
///
/// Results are reassembled by input index, so the output is identical to
/// `items.iter().map(f).collect()` no matter how threads interleave. `f`
/// must be a pure function of its item (all the experiment runs are: they
/// build a fresh `Network` from config + seed and consume it).
pub fn par_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let threads = thread_count(items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker filled every slot")
        })
        .collect()
}

/// Runs `f` once per seed, in parallel, returning results in seed order —
/// the common "repeat the experiment across ECMP draws" shape.
pub fn par_runs<T, F>(seeds: &[u64], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    par_map(seeds, |&s| f(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| x * 3);
        assert_eq!(out, (0..64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_runs_matches_serial_map() {
        let seeds: Vec<u64> = (1..=20).collect();
        // A seed-dependent computation with enough work to actually
        // interleave threads.
        let run = |seed: u64| {
            let mut rng = netsim::rng::SplitMix64::new(seed);
            (0..10_000).map(|_| rng.next_u64() & 0xFF).sum::<u64>()
        };
        let serial: Vec<u64> = seeds.iter().map(|&s| run(s)).collect();
        assert_eq!(par_runs(&seeds, run), serial);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert_eq!(par_runs(&empty, |s| s).len(), 0);
        assert_eq!(par_runs(&[7], |s| s + 1), vec![8]);
    }

    #[test]
    fn thread_count_is_bounded_by_runs() {
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(1000) >= 1);
        assert!(thread_count(2) <= 2);
    }

    #[test]
    fn valid_repro_threads_values_parse() {
        assert_eq!(parse_repro_threads(None), Ok(None));
        assert_eq!(parse_repro_threads(Some("1")), Ok(Some(1)));
        assert_eq!(parse_repro_threads(Some("8")), Ok(Some(8)));
    }

    #[test]
    fn invalid_repro_threads_values_are_rejected() {
        // Regression: these used to silently fall back to all cores —
        // `REPRO_THREADS=0` during a determinism hunt ran 32-wide.
        for bad in ["0", "", "all", "-1", "1.5"] {
            let err = parse_repro_threads(Some(bad)).expect_err(bad);
            assert!(err.contains("REPRO_THREADS"), "error names the var: {err}");
        }
    }
}
