#![warn(missing_docs)]

//! # experiments — the reproduction harness
//!
//! One module per table/figure of the paper; see DESIGN.md for the full
//! index and EXPERIMENTS.md for paper-vs-measured results. Run with:
//!
//! ```text
//! cargo run -p experiments --release -- <id> [--quick]
//! cargo run -p experiments --release -- all [--quick]
//! ```

pub mod bench_core;
pub mod chaos;
pub mod common;
pub mod compare;
pub mod ext_attribution;
pub mod ext_faults;
pub mod extensions;
pub mod report;
pub mod runner;
pub mod scenarios;

pub mod fig01_tcp_vs_rdma;
pub mod fig02_testbed;
pub mod fig03_pfc_unfairness;
pub mod fig04_victim_flow;
pub mod fig05_red_curve;
pub mod fig06_np;
pub mod fig07_rp_trace;
pub mod fig08_dcqcn_fairness;
pub mod fig09_dcqcn_victim;
pub mod fig10_fluid_vs_sim;
pub mod fig11_param_sweep;
pub mod fig12_g_sweep;
pub mod fig13_param_validation;
pub mod fig14_params;
pub mod fig15_pause_count;
pub mod fig16_benchmark;
pub mod fig17_user_scaling;
pub mod fig18_pfc_need;
pub mod fig19_queue_cdf;
pub mod fig20_multibottleneck;
pub mod sec4_thresholds;

/// All experiment ids, in paper order.
pub const ALL: &[&str] = &[
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig13", "fig14", "sec4", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
];

/// Extension experiment ids, in dispatch order (`ext` runs them all).
pub const EXT: &[&str] = &[
    "ext-rai",
    "ext-beta",
    "ext-prio",
    "ext-timely",
    "ext-start",
    "ext-fattree",
    "ext-stability",
    "ext-linkflap",
    "ext-pausestorm",
    "ext-attribution",
];

/// Dispatches one experiment by id. Returns false for unknown ids.
///
/// When a [`report`] sink is active (the `--json` flag or a test
/// capture), each dispatched id produces one finalized report; `ext`
/// re-dispatches its members so every extension gets its own.
pub fn dispatch(id: &str, quick: bool) -> bool {
    if id == "ext" {
        for sub in EXT {
            dispatch(sub, quick);
        }
        return true;
    }
    report::begin(id);
    let known = dispatch_inner(id, quick);
    if known {
        report::finish(id, quick);
    } else {
        report::discard();
    }
    known
}

fn dispatch_inner(id: &str, quick: bool) -> bool {
    match id {
        "fig1" => fig01_tcp_vs_rdma::run(quick),
        "fig2" => fig02_testbed::run(quick),
        "fig3" => fig03_pfc_unfairness::run(quick),
        "fig4" => fig04_victim_flow::run(quick),
        "fig5" => fig05_red_curve::run(quick),
        "fig6" => fig06_np::run(quick),
        "fig7" => fig07_rp_trace::run(quick),
        "fig8" => fig08_dcqcn_fairness::run(quick),
        "fig9" => fig09_dcqcn_victim::run(quick),
        "fig10" => fig10_fluid_vs_sim::run(quick),
        "fig11" => fig11_param_sweep::run(quick),
        "fig12" => fig12_g_sweep::run(quick),
        "fig13" => fig13_param_validation::run(quick),
        "fig14" => fig14_params::run(quick),
        "sec4" => sec4_thresholds::run(quick),
        "fig15" => fig15_pause_count::run(quick),
        "fig16" => fig16_benchmark::run(quick),
        "fig17" => fig17_user_scaling::run(quick),
        "fig18" => fig18_pfc_need::run(quick),
        "fig19" => fig19_queue_cdf::run(quick),
        "fig20" => fig20_multibottleneck::run(quick),
        "ext-rai" => extensions::rai_scaling(quick),
        "ext-beta" => extensions::beta_ablation(quick),
        "ext-prio" => extensions::priority_isolation(quick),
        "ext-timely" => extensions::reverse_path_sensitivity(quick),
        "ext-start" => extensions::fast_start(quick),
        "ext-fattree" => extensions::fat_tree_scale(quick),
        "ext-stability" => extensions::stability(quick),
        "ext-linkflap" => ext_faults::link_flap(quick),
        "ext-pausestorm" => ext_faults::pause_storm(quick),
        "ext-attribution" => ext_attribution::run(quick),
        _ => return false,
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_ids_are_rejected() {
        assert!(!dispatch("fig99", true));
        assert!(!dispatch("", true));
    }

    #[test]
    fn all_ids_are_known() {
        // Dispatch every id in quick mode for the cheap, closed-form
        // experiments; the simulation-heavy ones are covered by the
        // integration suite and the repro binary.
        for id in ["fig1", "fig2", "fig5", "fig6", "fig7", "fig14", "sec4"] {
            assert!(dispatch(id, true), "{id} should dispatch");
        }
        for id in ALL {
            assert!(
                matches!(
                    *id,
                    "fig1"
                        | "fig2"
                        | "fig3"
                        | "fig4"
                        | "fig5"
                        | "fig6"
                        | "fig7"
                        | "fig8"
                        | "fig9"
                        | "fig10"
                        | "fig11"
                        | "fig12"
                        | "fig13"
                        | "fig14"
                        | "sec4"
                        | "fig15"
                        | "fig16"
                        | "fig17"
                        | "fig18"
                        | "fig19"
                        | "fig20"
                ),
                "{id} is listed"
            );
        }
    }
}
