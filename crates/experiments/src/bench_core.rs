//! `repro bench-core` — the event-core performance trajectory.
//!
//! Times three fixed workloads and writes one `BENCH_<label>.json`
//! snapshot so successive PRs accumulate a comparable speed history:
//!
//! * `queue_churn` — the bare [`EventQueue`] under a schedule/pop mix
//!   that exercises the near cohort, the bucket wheel, and the overflow
//!   heap (no network on top). Pure scheduler throughput.
//! * `fig3_class` — one serial seed of the Figure 3 unfairness incast.
//! * `fig4_class` — one serial seed of the Figure 4 victim-flow run
//!   (the heaviest per-seed workload in the harness).
//!
//! Every simulation-side field (`events_executed`, `sim_time_us`, the
//! goodput `checksum`) is deterministic — byte-equal across runs and
//! machines — so two snapshots whose checksums match timed *the same
//! work* and their wall-clock fields (`wall_ms`, `events_per_sec`) are
//! directly comparable. `peak_pending_events` and `allocations` are
//! tracked only under `--features profile` and reported as 0 otherwise
//! (counting them costs a little speed, so the default build omits the
//! bookkeeping rather than skew the numbers it exists to measure).

use crate::common::CcChoice;
use crate::scenarios::{unfairness_scenario, victim_scenario};
use netsim::event::{Event, EventQueue};
use netsim::telemetry::Json;
use netsim::units::{Duration, Time};
use std::time::Instant;

/// Allocation counter, live only under `--features profile`: a
/// forwarding global allocator that counts `alloc` calls (a `realloc`
/// that moves counts once, via the default forwarding impl).
#[cfg(feature = "profile")]
mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    struct CountingAlloc;

    // SAFETY: pure pass-through to `System`; the counter has no effect
    // on the returned memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static COUNTER: CountingAlloc = CountingAlloc;

    /// Allocations made by this process so far.
    pub fn count() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Allocations made by this process so far (0 without `profile`).
fn allocations() -> u64 {
    #[cfg(feature = "profile")]
    {
        alloc_count::count()
    }
    #[cfg(not(feature = "profile"))]
    {
        0
    }
}

/// One timed workload, with the deterministic fields that prove two
/// snapshots measured identical work.
struct Sample {
    name: &'static str,
    /// Events executed — deterministic.
    events: u64,
    /// Final simulation time in µs — deterministic.
    sim_us: f64,
    /// Workload-specific output digest (goodput sum / clock) —
    /// deterministic; compare across snapshots before trusting wall
    /// numbers.
    checksum: f64,
    /// Wall-clock of the run — machine-dependent.
    wall: std::time::Duration,
    /// Pending-event high-water mark (`profile` builds; 0 otherwise).
    peak_pending: usize,
    /// Allocations during the run (`profile` builds; 0 otherwise).
    allocs: u64,
}

impl Sample {
    fn to_json(&self) -> Json {
        let wall_s = self.wall.as_secs_f64();
        let rate = if wall_s > 0.0 {
            (self.events as f64 / wall_s) as u64
        } else {
            0
        };
        Json::obj(vec![
            ("name", Json::from(self.name)),
            ("events_executed", Json::UInt(self.events)),
            ("sim_time_us", Json::from(self.sim_us)),
            ("checksum", Json::from(self.checksum)),
            ("wall_ms", Json::from(wall_s * 1e3)),
            ("events_per_sec", Json::UInt(rate)),
            ("peak_pending_events", Json::from(self.peak_pending)),
            ("allocations", Json::UInt(self.allocs)),
        ])
    }

    fn print(&self) {
        let wall_s = self.wall.as_secs_f64();
        println!(
            "  {:<11} {:>12} events  {:>9.1} ms  {:>5.1} Mev/s",
            self.name,
            self.events,
            wall_s * 1e3,
            self.events as f64 / wall_s.max(1e-9) / 1e6,
        );
    }
}

/// Bare-queue churn: keep a standing population of pending events and
/// stream `n` more through it. Offsets are drawn from a fixed LCG and
/// mixed so ~1/16 land past the wheel horizon (overflow path), the rest
/// across the near cohort and the bucket wheel. Deterministic by
/// construction: the checksum is the final clock.
fn queue_churn(n: u64) -> Sample {
    const STANDING: u64 = 8192;
    let a0 = allocations();
    let t0 = Instant::now();
    let mut q = EventQueue::new();
    let mut r: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut lcg = move || {
        r = r
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        r >> 33
    };
    let mut popped: u64 = 0;
    for i in 0..(n + STANDING) {
        let draw = lcg();
        let offset = if draw % 16 == 0 {
            // Past the wheel horizon: exercises the overflow heap and
            // its migration back into the wheel as the clock advances.
            1_000_000_000 + draw % 1_000_000
        } else {
            draw % 2_000_000
        };
        q.schedule(q.now() + Duration(offset), Event::Hook { id: i as usize });
        if i >= STANDING {
            q.pop();
            popped += 1;
        }
    }
    while q.pop().is_some() {
        popped += 1;
    }
    Sample {
        name: "queue_churn",
        events: popped,
        sim_us: q.now().as_micros_f64(),
        checksum: q.now().as_micros_f64(),
        wall: t0.elapsed(),
        peak_pending: q.peak_pending(),
        allocs: allocations() - a0,
    }
}

/// One serial Figure-3-class unfairness run (no CC, seed 1).
fn fig3_class(duration: Duration) -> Sample {
    let warmup = Duration(duration.0 / 5);
    let a0 = allocations();
    let t0 = Instant::now();
    let (tb, flows) = unfairness_scenario(CcChoice::None, 1, duration);
    let wall = t0.elapsed();
    let end = Time::ZERO + duration;
    let checksum: f64 = flows
        .iter()
        .map(|&fl| tb.net.goodput_gbps(fl, Time::ZERO + warmup, end))
        .sum();
    Sample {
        name: "fig3_class",
        events: tb.net.events_executed(),
        sim_us: tb.net.now().as_micros_f64(),
        checksum,
        wall,
        peak_pending: tb.net.peak_pending_events(),
        allocs: allocations() - a0,
    }
}

/// One serial Figure-4-class victim run (no CC, 2 senders under T3,
/// seed 1) — the heaviest per-seed workload in the harness.
fn fig4_class(duration: Duration) -> Sample {
    let warmup = Duration(duration.0 / 5);
    let a0 = allocations();
    let t0 = Instant::now();
    let (tb, victim) = victim_scenario(CcChoice::None, 2, 1, duration);
    let wall = t0.elapsed();
    let end = Time::ZERO + duration;
    let checksum = tb.net.goodput_gbps(victim, Time::ZERO + warmup, end);
    Sample {
        name: "fig4_class",
        events: tb.net.events_executed(),
        sim_us: tb.net.now().as_micros_f64(),
        checksum,
        wall,
        peak_pending: tb.net.peak_pending_events(),
        allocs: allocations() - a0,
    }
}

/// Runs the trajectory and writes `BENCH_<label>.json` to the current
/// directory. Quick mode shrinks every workload for CI smoke runs; its
/// numbers are comparable only to other quick snapshots.
pub fn run(quick: bool, label: &str) {
    println!("== bench-core: event-core trajectory ({label}) ==");
    let samples = [
        queue_churn(if quick { 2_000_000 } else { 20_000_000 }),
        fig3_class(Duration::from_millis(if quick { 20 } else { 250 })),
        fig4_class(Duration::from_millis(if quick { 20 } else { 250 })),
    ];
    for s in &samples {
        s.print();
    }
    let report = Json::obj(vec![
        ("schema", Json::from("bench-core-v1")),
        ("label", Json::from(label)),
        ("quick", Json::from(quick)),
        ("profile", Json::from(cfg!(feature = "profile"))),
        (
            "scenarios",
            Json::Arr(samples.iter().map(Sample::to_json).collect()),
        ),
    ]);
    let path = format!("BENCH_{label}.json");
    match std::fs::write(&path, report.render() + "\n") {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// True when `label` is safe to splice into a filename.
pub fn label_ok(label: &str) -> bool {
    !label.is_empty()
        && label
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_churn_is_deterministic() {
        let a = queue_churn(100_000);
        let b = queue_churn(100_000);
        assert_eq!(a.events, b.events);
        assert_eq!(a.checksum, b.checksum);
        assert!(a.events >= 100_000);
    }

    #[test]
    fn scenario_samples_are_deterministic_and_reach_the_horizon() {
        let d = Duration::from_millis(2);
        let a = fig3_class(d);
        let b = fig3_class(d);
        assert_eq!(a.events, b.events);
        assert_eq!(a.checksum, b.checksum);
        // The run_until clock fix: the sample's sim time is the horizon
        // itself, not wherever the last event happened to fall.
        assert_eq!(a.sim_us, d.as_secs_f64() * 1e6);
        let v = fig4_class(d);
        assert_eq!(v.sim_us, d.as_secs_f64() * 1e6);
        assert!(v.events > a.events / 2, "victim run is a real workload");
    }

    #[test]
    fn labels_are_vetted() {
        assert!(label_ok("pr6"));
        assert!(label_ok("2026-08-07_local"));
        assert!(!label_ok(""));
        assert!(!label_ok("../escape"));
        assert!(!label_ok("a b"));
    }

    #[test]
    fn sample_json_has_the_documented_fields() {
        let s = queue_churn(10_000);
        let rendered = s.to_json().render();
        for key in [
            "name",
            "events_executed",
            "sim_time_us",
            "checksum",
            "wall_ms",
            "events_per_sec",
            "peak_pending_events",
            "allocations",
        ] {
            assert!(rendered.contains(key), "missing {key} in {rendered}");
        }
    }
}
