//! Extensions beyond the paper's figures: the ablations DESIGN.md calls
//! out and the §5.2/§7 claims that have no figure of their own.

use crate::common::{banner, mean, CcChoice, RunScale};
use crate::runner::par_map;
use dcqcn::params::DcqcnParams;
use netsim::buffer::PfcThreshold;
use netsim::event::PortId;
use netsim::packet::DATA_PRIORITY;
use netsim::prelude::*;
use netsim::stats::SamplerConfig;
use netsim::topology::{star, LinkParams};

/// §5.2's closing claim: the deployed R_AI copes with 16:1 incast;
/// halving R_AI trades convergence speed for stability at 32:1.
pub fn rai_scaling(quick: bool) {
    banner(
        "ext-rai",
        "R_AI vs incast depth (§5.2: halve R_AI for 32:1)",
    );
    let scale = RunScale { quick };
    let duration = scale.dur(150, 400);
    println!(
        "{:>8} {:>8} | {:>10} {:>10} {:>10}",
        "incast", "R_AI", "total Gbps", "q p50 KB", "q p99 KB"
    );
    let grid: Vec<(usize, u64, &str)> = [8usize, 16, 32]
        .iter()
        .flat_map(|&k| [(k, 40u64, "40M"), (k, 20, "20M")])
        .collect();
    let results = par_map(&grid, |&(k, rai_mbps, _)| {
        let params = DcqcnParams {
            rai: Bandwidth::mbps(rai_mbps),
            ..DcqcnParams::paper()
        };
        let cc = CcChoice::Dcqcn(params);
        let mut s = star(
            k + 1,
            LinkParams::default(),
            cc.host_config(),
            cc.switch_config(true, false),
            5,
        );
        let dst = s.hosts[k];
        let f = cc.factory();
        let flows: Vec<FlowId> = (0..k)
            .map(|i| s.net.add_flow(s.hosts[i], dst, DATA_PRIORITY, &f))
            .collect();
        for &fl in &flows {
            s.net.send_message(fl, u64::MAX, Time::ZERO);
        }
        let port = PortId(k);
        s.net.enable_sampling(
            Duration::from_micros(20),
            SamplerConfig {
                all_flows: true,
                queues: vec![(s.switch, port)],
                ..SamplerConfig::default()
            },
        );
        let end = Time::ZERO + duration;
        s.net.run_until(end);
        let from = Time::ZERO + duration / 2;
        let total: f64 = flows
            .iter()
            .map(|&fl| s.net.goodput_gbps(fl, from, end))
            .sum();
        let tl = s.net.queue_timeline(s.switch, port).expect("sampled port");
        (
            total,
            tl.weighted_percentile(50.0, from) / 1000.0,
            tl.weighted_percentile(99.0, from) / 1000.0,
        )
    });
    for (&(k, _, label), &(total, p50, p99)) in grid.iter().zip(&results) {
        println!("{k:>7}: {label:>8} | {total:>10.2} {p50:>10.1} {p99:>10.1}");
    }
    println!("smaller R_AI lowers the queue tail at deep incast, at the cost of");
    println!("slower recovery (the paper's 'acceptable compromise').");
}

/// §4 ablation: dynamic-β vs static PFC thresholds under an uncontrolled
/// incast — the dynamic threshold pauses later when the buffer is empty.
pub fn beta_ablation(quick: bool) {
    banner("ext-beta", "dynamic vs static PFC thresholds (pause churn)");
    let scale = RunScale { quick };
    let duration = scale.dur(20, 60);
    let configs: Vec<(&str, PfcThreshold)> = vec![
        ("static 24.47KB", PfcThreshold::Static(24_470)),
        ("dynamic beta=1", PfcThreshold::Dynamic { beta: 1.0 }),
        ("dynamic beta=8", PfcThreshold::Dynamic { beta: 8.0 }),
        ("dynamic beta=64", PfcThreshold::Dynamic { beta: 64.0 }),
    ];
    println!(
        "{:<17} | {:>9} {:>9} {:>10} {:>7}",
        "threshold", "pause_tx", "resume_tx", "total Gbps", "drops"
    );
    let results = par_map(&configs, |&(_, threshold)| {
        let mut sw = SwitchConfig::paper_default();
        sw.buffer.threshold = threshold;
        let mut s = star(
            9,
            LinkParams::default(),
            HostConfig {
                cnp_interval: None,
                ..HostConfig::default()
            },
            sw,
            5,
        );
        let dst = s.hosts[8];
        let flows: Vec<FlowId> = (0..8)
            .map(|i| {
                s.net
                    .add_flow(s.hosts[i], dst, DATA_PRIORITY, |l| Box::new(NoCc::new(l)))
            })
            .collect();
        for &fl in &flows {
            s.net.send_message(fl, u64::MAX, Time::ZERO);
        }
        let end = Time::ZERO + duration;
        s.net.run_until(end);
        let st = s.net.switch_stats(s.switch);
        let total: f64 = flows
            .iter()
            .map(|&fl| {
                s.net.flow_stats(fl).delivered_bytes as f64 * 8.0 / duration.as_secs_f64() / 1e9
            })
            .sum();
        (
            st.pause_tx,
            st.resume_tx,
            total,
            st.drops_pool + st.drops_lossy,
        )
    });
    for ((label, _), &(pause_tx, resume_tx, total, drops)) in configs.iter().zip(&results) {
        println!("{label:<17} | {pause_tx:>9} {resume_tx:>9} {total:>10.2} {drops:>7}");
    }
    println!("larger beta defers the first pause (spending more of the shared");
    println!("buffer first); at saturation the pause/resume churn rises with the");
    println!("higher operating point. Every configuration stays lossless.");
}

/// §8 direction: PFC priority classes isolate traffic types even without
/// congestion control.
pub fn priority_isolation(quick: bool) {
    banner("ext-prio", "PFC priority classes isolate traffic");
    let scale = RunScale { quick };
    let duration = scale.dur(20, 50);
    let mut s = star(
        7,
        LinkParams::default(),
        HostConfig {
            cnp_interval: None,
            ..HostConfig::default()
        },
        SwitchConfig::paper_default(),
        5,
    );
    // 4:1 incast on class 3 to host 5; a class-4 flow to host 6.
    let f = |l: Bandwidth| -> Box<dyn netsim::cc::CongestionControl> { Box::new(NoCc::new(l)) };
    let mut incast = Vec::new();
    for i in 0..4 {
        let fl = s.net.add_flow(s.hosts[i], s.hosts[5], 3, f);
        s.net.send_message(fl, u64::MAX, Time::ZERO);
        incast.push(fl);
    }
    let victim = s.net.add_flow(s.hosts[4], s.hosts[6], 4, f);
    s.net.send_message(victim, u64::MAX, Time::ZERO);
    let end = Time::ZERO + duration;
    s.net.run_until(end);
    let secs = duration.as_secs_f64();
    let incast_rates: Vec<f64> = incast
        .iter()
        .map(|&fl| s.net.flow_stats(fl).delivered_bytes as f64 * 8.0 / secs / 1e9)
        .collect();
    let victim_rate = s.net.flow_stats(victim).delivered_bytes as f64 * 8.0 / secs / 1e9;
    println!(
        "class-3 incast flows: {} (mean {:.2} Gbps)",
        incast.len(),
        mean(&incast_rates)
    );
    println!("class-4 bystander:    {victim_rate:.2} Gbps (line rate ≈ 38.3)");
    println!("PAUSEs on class 3 never touch class 4.");
}

/// §3.3: "DCQCN is not particularly sensitive to congestion on the
/// reverse path, as the send rate does not depend on accurate RTT
/// estimation like TIMELY." A forward flow's path is uncongested; heavy
/// reverse traffic floods the link its ACKs return on. TIMELY reads the
/// inflated RTT and throttles; DCQCN does not.
pub fn reverse_path_sensitivity(quick: bool) {
    use baselines::timely::TimelyParams;
    banner(
        "ext-timely",
        "reverse-path congestion: DCQCN vs TIMELY (§3.3)",
    );
    let scale = RunScale { quick };
    let duration = scale.dur(60, 150);
    println!(
        "{:<8} | {:>14} {:>14}",
        "scheme", "before (Gbps)", "during (Gbps)"
    );
    let ccs = [
        CcChoice::dcqcn_paper(),
        CcChoice::Timely(TimelyParams::default_40g()),
    ];
    let results = par_map(&ccs, |&cc| {
        let mut s = star(
            6,
            LinkParams::default(),
            cc.host_config(),
            cc.switch_config(true, false),
            13,
        );
        let f = cc.factory();
        // Measured forward flow: H0 -> H1 (its data path is never
        // congested).
        let fwd = s.net.add_flow(s.hosts[0], s.hosts[1], DATA_PRIORITY, &f);
        s.net.send_message(fwd, u64::MAX, Time::ZERO);
        // Reverse congestion toward H0 starts halfway: its ACKs (data
        // class for TIMELY) now queue behind 3:1 incast at H0's downlink.
        let t_rev = Time::ZERO + duration / 2;
        for i in 2..5 {
            let rf = s.net.add_flow(s.hosts[i], s.hosts[0], DATA_PRIORITY, |l| {
                Box::new(NoCc::new(l))
            });
            s.net.send_message(rf, u64::MAX, t_rev);
        }
        s.net.enable_sampling(
            Duration::from_micros(200),
            SamplerConfig {
                all_flows: true,
                ..SamplerConfig::default()
            },
        );
        let end = Time::ZERO + duration;
        s.net.run_until(end);
        let before = s.net.goodput_gbps(fwd, Time::ZERO + duration / 4, t_rev);
        let during = s.net.goodput_gbps(fwd, t_rev + duration / 10, end);
        (before, during)
    });
    for (cc, &(before, during)) in ccs.iter().zip(&results) {
        println!("{:<8} | {:>14.2} {:>14.2}", cc.label(), before, during);
    }
    println!("the forward path never congests; only the ACK return path does.");
    println!("paper: DCQCN's rate does not depend on RTT estimation — it holds.");
}

/// §1/§2's requirement (iii): "hyper-fast start in the common case of no
/// congestion" — DCTCP-style slow start penalizes exactly the bursty
/// storage transfers the paper's workloads are made of. Measure transfer
/// completion time on an idle fabric.
pub fn fast_start(quick: bool) {
    use baselines::dctcp::DctcpParams;
    banner(
        "ext-start",
        "hyper-fast start: transfer latency on an idle fabric",
    );
    let _ = quick;
    println!(
        "{:>9} | {:>13} {:>13} | {:>7}",
        "size", "DCQCN (µs)", "DCTCP (µs)", "ratio"
    );
    let sizes = [4_000u64, 16_000, 64_000, 256_000, 1_000_000];
    let ccs = [
        CcChoice::dcqcn_paper(),
        CcChoice::Dctcp(DctcpParams::default_40g()),
    ];
    let grid: Vec<(u64, CcChoice)> = sizes
        .iter()
        .flat_map(|&bytes| ccs.iter().map(move |&cc| (bytes, cc)))
        .collect();
    let times = par_map(&grid, |&(bytes, cc)| {
        let mut s = star(
            2,
            LinkParams::default(),
            cc.host_config(),
            cc.switch_config(true, false),
            3,
        );
        let f = cc.factory();
        let fl = s.net.add_flow(s.hosts[0], s.hosts[1], DATA_PRIORITY, &f);
        s.net.send_message(fl, bytes, Time::ZERO);
        s.net.run_until(Time::from_millis(100));
        let c = s.net.flow_stats(fl).completions[0];
        (c.at - c.started).as_micros_f64()
    });
    for (i, &bytes) in sizes.iter().enumerate() {
        let (dcqcn_us, dctcp_us) = (times[2 * i], times[2 * i + 1]);
        println!(
            "{:>8}K | {:>13.1} {:>13.1} | {:>6.2}x",
            bytes as f64 / 1000.0,
            dcqcn_us,
            dctcp_us,
            dctcp_us / dcqcn_us
        );
    }
    println!("DCQCN starts at line rate; DCTCP pays a few RTTs of slow start on");
    println!("every cold transfer. On this one-switch fabric that is a ~25% hit");
    println!("for small transfers; it compounds with path length and load — the");
    println!("paper's case against DCTCP/iWARP for bursty storage workloads.");
}

/// Scalability beyond the paper's 20-host testbed: DCQCN on a k=4 fat
/// tree under random-permutation traffic (every host sends greedily to a
/// distinct host). PFC-only suffers the same congestion spreading; DCQCN
/// keeps the fabric clean and fair.
pub fn fat_tree_scale(quick: bool) {
    use netsim::topology::fat_tree;
    banner(
        "ext-fattree",
        "DCQCN on a k=4 fat tree (16 hosts), permutation traffic",
    );
    let scale = RunScale { quick };
    let duration = scale.dur(60, 200);
    println!(
        "{:<9} | {:>11} {:>9} {:>9} | {:>9} {:>7}",
        "scheme", "total Gbps", "min flow", "max flow", "pauses", "drops"
    );
    let ccs = [CcChoice::None, CcChoice::dcqcn_paper()];
    let results = par_map(&ccs, |&cc| {
        let mut ft = fat_tree(
            4,
            LinkParams::default(),
            cc.host_config(),
            cc.switch_config(true, false),
            7,
        );
        let n = ft.hosts.len();
        let f = cc.factory();
        // A derangement-ish permutation: host i -> host (i + 5) mod 16.
        let flows: Vec<FlowId> = (0..n)
            .map(|i| {
                let fl = ft
                    .net
                    .add_flow(ft.hosts[i], ft.hosts[(i + 5) % n], DATA_PRIORITY, &f);
                ft.net.send_message(fl, u64::MAX, Time::ZERO);
                fl
            })
            .collect();
        ft.net.enable_sampling(
            Duration::from_micros(500),
            SamplerConfig {
                all_flows: true,
                ..SamplerConfig::default()
            },
        );
        let end = Time::ZERO + duration;
        ft.net.run_until(end);
        let from = Time::ZERO + duration / 2;
        let rates: Vec<f64> = flows
            .iter()
            .map(|&fl| ft.net.goodput_gbps(fl, from, end))
            .collect();
        let total: f64 = rates.iter().sum();
        let (mn, mx) = (
            rates.iter().cloned().fold(f64::INFINITY, f64::min),
            rates.iter().cloned().fold(0.0f64, f64::max),
        );
        let mut pauses = 0;
        let mut drops = 0;
        for sw in ft.cores.iter().chain(&ft.aggs).chain(&ft.edges) {
            let st = ft.net.switch_stats(*sw);
            pauses += st.pause_rx;
            drops += st.drops_pool + st.drops_lossy;
        }
        (total, mn, mx, pauses, drops)
    });
    for (cc, &(total, mn, mx, pauses, drops)) in ccs.iter().zip(&results) {
        println!(
            "{:<9} | {:>11.1} {:>9.2} {:>9.2} | {:>9} {:>7}",
            cc.label(),
            total,
            mn,
            mx,
            pauses,
            drops
        );
    }
    println!("a permutation is admissible (no endpoint oversubscribed): the only");
    println!("contention is ECMP collisions on fabric links. DCQCN resolves them");
    println!("without PAUSE storms.");
}

/// The paper's stated future work: stability analysis of the fluid model
/// (§5.2). Perturb the system at its fixed point and classify the
/// response, across g and incast depth.
pub fn stability(quick: bool) {
    use fluid::stability::stability_map;
    banner(
        "ext-stability",
        "fluid-model stability map (the paper's future work)",
    );
    let horizon = if quick { 0.15 } else { 0.3 };
    let gs = [1.0 / 16.0, 1.0 / 256.0, 1.0 / 1024.0];
    let ns = [2usize, 4, 8, 16];
    println!(
        "{:>8} {:>6} | {:>11} | {:>10} {:>10} {:>9}",
        "g", "N", "verdict", "early amp", "late amp", "q* (KB)"
    );
    // One fluid probe per (g, N) grid point.
    let grid: Vec<(f64, usize)> = gs
        .iter()
        .flat_map(|&g| ns.iter().map(move |&n| (g, n)))
        .collect();
    let points = par_map(&grid, |&(g, n)| {
        stability_map(&[g], &[n], horizon).remove(0)
    });
    for (g, n, rep) in points {
        println!(
            "   1/{:>4} {:>6} | {:>11} | {:>10.1} {:>10.1} {:>9.1}",
            (1.0 / g).round(),
            n,
            format!("{:?}", rep.verdict),
            rep.early_amplitude,
            rep.late_amplitude,
            rep.q_star * 1.5 / 1.0,
        );
    }
    println!("smaller g demonstrably enlarges the stability region: g=1/16 limit-");
    println!("cycles from 4:1 on, while the deployed g=1/256 is stable through 8:1");
    println!("— Figure 12's 'smaller g, lower oscillation' claim, formalized. Past");
    println!("~16:1 every g rides the K_max cliff (the regime §5.2's R_AI-halving");
    println!("advice addresses).");
}

/// Runs all extensions.
pub fn run_all(quick: bool) {
    rai_scaling(quick);
    beta_ablation(quick);
    priority_isolation(quick);
    reverse_path_sensitivity(quick);
    fast_start(quick);
    fat_tree_scale(quick);
    stability(quick);
}
