//! Figure 3: PFC unfairness — four senders (H1–H3 under T1, H4 under T4)
//! incast into R under T4 with **no** end-to-end congestion control.
//! H4, alone on its ingress port at T4, beats H1–H3, who share T4's two
//! uplinks depending on the ECMP draw (the parking-lot problem).

use crate::common::{banner, breakdown_json, mmm, print_breakdown, CcChoice, RunScale};
use crate::report;
use crate::runner::par_runs;
use crate::scenarios::{unfairness_attribution, unfairness_run_full};
use netsim::telemetry::{Json, SpanState};
use netsim::units::Duration;

/// Runs the scenario across seeds and prints per-host min/median/max.
pub fn run_with(cc: CcChoice, scale: RunScale) {
    let seeds = scale.seeds(3, 9);
    let duration = scale.dur(150, 250);
    let warmup = Duration::from_millis(scale.pick(50, 80));
    let (extra_dur, extra_warm) = match cc {
        // DCQCN needs time to converge after the line-rate start.
        CcChoice::Dcqcn(_) => (Duration::from_millis(200), Duration::from_millis(150)),
        _ => (Duration::ZERO, Duration::ZERO),
    };
    let runs = par_runs(&seeds, |seed| {
        unfairness_run_full(cc, seed, duration + extra_dur, warmup + extra_warm)
    });
    let mut per_host: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (g, _) in &runs {
        for (h, &v) in g.iter().enumerate() {
            per_host[h].push(v);
        }
    }
    report::put("scheme", Json::from(cc.label()));
    report::put(
        "per_host_goodput_gbps",
        Json::Arr(
            per_host
                .iter()
                .map(|g| Json::from(g.clone()))
                .collect::<Vec<_>>(),
        ),
    );
    if report::enabled() {
        report::put(
            "runs",
            Json::Arr(
                seeds
                    .iter()
                    .zip(&runs)
                    .map(|(&seed, (_, telemetry))| {
                        Json::obj(vec![
                            ("seed", Json::from(seed)),
                            ("telemetry", telemetry.clone()),
                        ])
                    })
                    .collect::<Vec<_>>(),
            ),
        );
    }
    println!(
        "per-sender goodput across {} ECMP draws (Gbps):",
        seeds.len()
    );
    for (h, name) in ["H1", "H2", "H3", "H4"].iter().enumerate() {
        println!("  {name}: {}", mmm(&per_host[h]));
    }
    let h4_min = per_host[3].iter().cloned().fold(f64::INFINITY, f64::min);
    let others_max = per_host[..3]
        .iter()
        .flatten()
        .cloned()
        .fold(0.0f64, f64::max);
    match cc {
        CcChoice::None => println!(
            "  H4 min ({h4_min:.1}) vs H1–H3 max ({others_max:.1}) — paper: H4's min exceeds the others' max"
        ),
        _ => {
            let all: Vec<f64> = per_host.iter().flatten().copied().collect();
            let spread = all.iter().cloned().fold(0.0f64, f64::max)
                - all.iter().cloned().fold(f64::INFINITY, f64::min);
            println!("  spread across all hosts/draws: {spread:.2} Gbps — paper: equal shares, little variance");
        }
    }

    // Causal attribution (serial, one seed): where did H1's time go?
    // Under PFC alone a shared-uplink sender is PAUSE-blocked by T1; an
    // end-to-end scheme replaces that with rate-limiter throttling.
    let att_dur = duration + extra_dur;
    let bd = unfairness_attribution(cc, seeds[0], att_dur);
    println!(
        "H1 time attribution over {:.0} ms (seed {}):",
        att_dur.as_secs_f64() * 1e3,
        seeds[0]
    );
    print_breakdown(&bd, att_dur);
    let blocked = bd[SpanState::PauseBlocked as usize];
    let throttled = bd[SpanState::Throttled as usize];
    match cc {
        CcChoice::None => assert!(
            blocked > throttled,
            "PFC-only H1 must be dominated by pause_blocked \
             ({blocked} vs throttled {throttled})"
        ),
        CcChoice::Dcqcn(_) => assert!(
            throttled > blocked,
            "DCQCN H1 must be dominated by throttled \
             ({throttled} vs pause_blocked {blocked})"
        ),
        _ => {}
    }
    report::put("h1_breakdown_us", breakdown_json(&bd));
}

/// Runs the experiment.
pub fn run(quick: bool) {
    banner("fig3", "PFC unfairness (no congestion control)");
    run_with(CcChoice::None, RunScale { quick });
}
