//! Figure 8: DCQCN removes the Figure 3 unfairness — same scenario with
//! DCQCN enabled; all four senders share the bottleneck equally.

use crate::common::{banner, CcChoice, RunScale};
use crate::fig03_pfc_unfairness::run_with;

/// Runs the experiment.
pub fn run(quick: bool) {
    banner("fig8", "DCQCN fixes the unfairness of Figure 3");
    run_with(CcChoice::dcqcn_paper(), RunScale { quick });
}
