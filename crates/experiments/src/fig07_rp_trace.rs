//! Figure 7: the RP state machine — a deterministic trace through rate
//! cut, fast recovery, and additive increase.

use crate::common::banner;
use crate::report;
use dcqcn::params::DcqcnParams;
use dcqcn::rp::{DcqcnRp, TIMER_RATE};
use netsim::cc::{CcActions, CongestionControl};
use netsim::telemetry::timeline::{TimelineSet, TrackKind};
use netsim::telemetry::{Dashboard, Series};
use netsim::units::{Bandwidth, Time};

/// Runs the experiment.
pub fn run(_quick: bool) {
    banner(
        "fig7",
        "RP state machine trace (cut -> fast recovery -> additive increase)",
    );
    let params = DcqcnParams::paper();
    let mut rp = DcqcnRp::new(Bandwidth::gbps(40), params);
    let mut a = CcActions::default();
    // The trace doubles as a timeline fixture: R_C / R_T / alpha are
    // recorded per event and rendered with `--dash`.
    let mut tls = TimelineSet::new();
    let rc = tls.track("rate_gbps/R_C", TrackKind::Gauge, 1e-6, 64);
    let rt = tls.track("rate_gbps/R_T", TrackKind::Gauge, 1e-6, 64);
    let al = tls.track("alpha", TrackKind::Gauge, 1e-6, 64);
    println!(
        "{:>6} | {:>10} | {:>10} | {:>8} | phase",
        "event", "R_C Gbps", "R_T Gbps", "alpha"
    );
    let mut row = |ev: &str, t: Time, rp: &DcqcnRp, phase: &str| {
        println!(
            "{:>6} | {:>10.3} | {:>10.3} | {:>8.4} | {phase}",
            ev,
            rp.rate().as_gbps_f64(),
            rp.target_rate().as_gbps_f64(),
            rp.alpha()
        );
        tls.record_f64(rc, t, rp.rate().as_gbps_f64());
        tls.record_f64(rt, t, rp.target_rate().as_gbps_f64());
        tls.record_f64(al, t, rp.alpha());
    };
    row("start", Time::ZERO, &rp, "line rate, limiter free");
    rp.on_cnp(Time::ZERO, &mut a);
    row("CNP", Time::ZERO, &rp, "cut: R_T=R_C_old, R_C*=(1-alpha/2)");
    rp.on_cnp(Time::from_micros(50), &mut a);
    row("CNP", Time::from_micros(50), &rp, "second cut");
    for i in 1..=10u64 {
        let t = Time::from_micros(100 + 55 * i);
        rp.on_timer(t, TIMER_RATE, &mut a);
        let phase = if i < 5 {
            "fast recovery (halve gap to R_T)"
        } else {
            "additive increase (R_T += 40 Mbps)"
        };
        row(&format!("T#{i}"), t, &rp, phase);
    }
    if report::dash_enabled() {
        let mut dash = Dashboard::new("fig7: RP state machine trace");
        dash.fact("events", "13");
        dash.fact("params", "paper");
        let series_of = |tl: &netsim::telemetry::Timeline, label: &str| {
            let s = tl.series();
            Series {
                label: label.to_string(),
                points: s
                    .times
                    .iter()
                    .zip(&s.values)
                    .map(|(t, &v)| (t.as_micros_f64(), v))
                    .collect(),
            }
        };
        dash.chart(
            "RP rates",
            "Gbps",
            vec![series_of(tls.get(rc), "R_C"), series_of(tls.get(rt), "R_T")],
        );
        dash.chart("alpha", "alpha", vec![series_of(tls.get(al), "alpha")]);
        report::put_dash(&dash);
    }
}
