//! Figure 7: the RP state machine — a deterministic trace through rate
//! cut, fast recovery, and additive increase.

use crate::common::banner;
use dcqcn::params::DcqcnParams;
use dcqcn::rp::{DcqcnRp, TIMER_RATE};
use netsim::cc::{CcActions, CongestionControl};
use netsim::units::{Bandwidth, Time};

/// Runs the experiment.
pub fn run(_quick: bool) {
    banner(
        "fig7",
        "RP state machine trace (cut -> fast recovery -> additive increase)",
    );
    let params = DcqcnParams::paper();
    let mut rp = DcqcnRp::new(Bandwidth::gbps(40), params);
    let mut a = CcActions::default();
    println!(
        "{:>6} | {:>10} | {:>10} | {:>8} | phase",
        "event", "R_C Gbps", "R_T Gbps", "alpha"
    );
    let row = |ev: &str, rp: &DcqcnRp, phase: &str| {
        println!(
            "{:>6} | {:>10.3} | {:>10.3} | {:>8.4} | {phase}",
            ev,
            rp.rate().as_gbps_f64(),
            rp.target_rate().as_gbps_f64(),
            rp.alpha()
        );
    };
    row("start", &rp, "line rate, limiter free");
    rp.on_cnp(Time::ZERO, &mut a);
    row("CNP", &rp, "cut: R_T=R_C_old, R_C*=(1-alpha/2)");
    rp.on_cnp(Time::from_micros(50), &mut a);
    row("CNP", &rp, "second cut");
    for i in 1..=10u64 {
        rp.on_timer(Time::from_micros(100 + 55 * i), TIMER_RATE, &mut a);
        let phase = if i < 5 {
            "fast recovery (halve gap to R_T)"
        } else {
            "additive increase (R_T += 40 Mbps)"
        };
        row(&format!("T#{i}"), &rp, phase);
    }
}
