//! Reusable testbed scenarios: the §2.2 unfairness and victim-flow setups
//! on the Figure 2 Clos, the §6.2 benchmark-traffic runs, and the fault
//! injection scenarios (link flap, pause storm).

use crate::common::CcChoice;
use netsim::event::NodeId;
use netsim::faults::{FaultConfig, FaultPlan};
use netsim::packet::{FlowId, DATA_PRIORITY};
use netsim::stats::SamplerConfig;
use netsim::switch::PfcWatchdogConfig;
use netsim::telemetry::{CongestionTree, Json, NUM_SPAN_STATES};
use netsim::topology::{clos_testbed, ClosTestbed, LinkParams};
use netsim::units::{Duration, Time};
use workloads::traffic::{
    flow_goodputs, setup_incast, setup_user_traffic, transfer_goodputs, UserTrafficConfig,
};

/// Builds the Figure 2 testbed configured for a CC scheme.
pub fn testbed(
    cc: CcChoice,
    pfc: bool,
    misconfigured: bool,
    hosts_per_tor: usize,
    seed: u64,
) -> ClosTestbed {
    clos_testbed(
        hosts_per_tor,
        LinkParams::default(),
        cc.host_config(),
        cc.switch_config(pfc, misconfigured),
        seed,
    )
}

/// The Figure 3/8 unfairness scenario: H1–H3 under T1 and H4 under T4 all
/// send greedily to R under T4. Returns per-host goodput (Gbps) measured
/// over `[warmup, duration]`.
pub fn unfairness_run(cc: CcChoice, seed: u64, duration: Duration, warmup: Duration) -> Vec<f64> {
    unfairness_run_full(cc, seed, duration, warmup).0
}

/// [`unfairness_run`] plus the run's full telemetry report (counters,
/// histograms, per-flow stats) for `--json` output.
pub fn unfairness_run_full(
    cc: CcChoice,
    seed: u64,
    duration: Duration,
    warmup: Duration,
) -> (Vec<f64>, Json) {
    let (tb, flows) = unfairness_scenario(cc, seed, duration);
    let end = Time::ZERO + duration;
    let goodputs = flows
        .iter()
        .map(|&fl| tb.net.goodput_gbps(fl, Time::ZERO + warmup, end))
        .collect();
    (goodputs, tb.net.telemetry_report())
}

/// Builds and runs one unfairness scenario to `duration`, returning the
/// finished testbed (for event-count/goodput inspection — `bench-core`
/// reads its trajectory metrics off it) and the four flows in H1–H4
/// order.
pub fn unfairness_scenario(
    cc: CcChoice,
    seed: u64,
    duration: Duration,
) -> (ClosTestbed, Vec<FlowId>) {
    let mut tb = testbed(cc, true, false, 5, seed);
    let senders = [
        tb.hosts[0][0],
        tb.hosts[0][1],
        tb.hosts[0][2],
        tb.hosts[3][0],
    ];
    let receiver = tb.hosts[3][1];
    let f = cc.factory();
    let flows: Vec<FlowId> = senders
        .iter()
        .map(|&h| tb.net.add_flow(h, receiver, DATA_PRIORITY, &f))
        .collect();
    for &fl in &flows {
        tb.net.send_message(fl, u64::MAX, Time::ZERO);
    }
    tb.net.enable_sampling(
        Duration::from_micros(500),
        SamplerConfig {
            all_flows: true,
            ..SamplerConfig::default()
        },
    );
    tb.net.run_until(Time::ZERO + duration);
    (tb, flows)
}

/// The Figure 4/9 victim-flow scenario: H11–H14 (under T1) plus
/// `t3_senders` hosts under T3 send greedily to R under T4, while the
/// victim VS (under T1) sends to VR (under T2). Returns the victim's
/// goodput in Gbps.
pub fn victim_run(
    cc: CcChoice,
    t3_senders: usize,
    seed: u64,
    duration: Duration,
    warmup: Duration,
) -> f64 {
    victim_run_full(cc, t3_senders, seed, duration, warmup).0
}

/// [`victim_run`] plus the run's full telemetry report for `--json`.
pub fn victim_run_full(
    cc: CcChoice,
    t3_senders: usize,
    seed: u64,
    duration: Duration,
    warmup: Duration,
) -> (f64, Json) {
    let (tb, victim) = victim_scenario(cc, t3_senders, seed, duration);
    let end = Time::ZERO + duration;
    let goodput = tb.net.goodput_gbps(victim, Time::ZERO + warmup, end);
    (goodput, tb.net.telemetry_report())
}

/// Builds and runs one victim-flow scenario to `duration`, returning the
/// finished testbed and the victim flow. Shared by [`victim_run_full`]
/// and `bench-core`.
pub fn victim_scenario(
    cc: CcChoice,
    t3_senders: usize,
    seed: u64,
    duration: Duration,
) -> (ClosTestbed, FlowId) {
    let mut tb = testbed(cc, true, false, 5, seed);
    let receiver = tb.hosts[3][0];
    let vs = tb.hosts[0][4];
    let vr = tb.hosts[1][0];
    let f = cc.factory();
    let mut flows: Vec<FlowId> = Vec::new();
    for i in 0..4 {
        flows.push(tb.net.add_flow(tb.hosts[0][i], receiver, DATA_PRIORITY, &f));
    }
    for i in 0..t3_senders {
        flows.push(tb.net.add_flow(tb.hosts[2][i], receiver, DATA_PRIORITY, &f));
    }
    let victim = tb.net.add_flow(vs, vr, DATA_PRIORITY, &f);
    flows.push(victim);
    for &fl in &flows {
        tb.net.send_message(fl, u64::MAX, Time::ZERO);
    }
    tb.net.enable_sampling(
        Duration::from_micros(500),
        SamplerConfig {
            all_flows: true,
            ..SamplerConfig::default()
        },
    );
    tb.net.run_until(Time::ZERO + duration);
    (tb, victim)
}

/// Result of an [`attribution_run`]: the Figure 4 victim's causally
/// attributed FCT decomposition, the run's congestion tree, and its
/// Chrome trace.
#[derive(Debug, Clone)]
pub struct AttributionResult {
    /// Did the victim's finite message complete within the run?
    pub completed: bool,
    /// The victim's measured flow completion time.
    pub fct: Duration,
    /// Per-state attributed time, indexed by
    /// [`netsim::telemetry::SpanState`]; sums exactly to `fct` when
    /// `completed` (the identity the sanitize auditor enforces).
    pub breakdown: [Duration; NUM_SPAN_STATES],
    /// The pause-propagation graph folded into a congestion tree: root
    /// port(s) and every victim flow.
    pub tree: CongestionTree,
    /// The Chrome trace-event export of the whole run.
    pub trace: Json,
    /// The run's full telemetry report for `--json` output.
    pub telemetry: Json,
}

/// The Figure 4 victim-flow scenario with causal tracing: the incast
/// senders transmit greedily from t = 0 while the victim VS→VR sends one
/// finite `victim_bytes` message at `start_at` (late enough that a
/// converging scheme has settled). Returns the victim's span-attributed
/// FCT decomposition plus the run's congestion tree and Chrome trace.
pub fn attribution_run(
    cc: CcChoice,
    t3_senders: usize,
    victim_bytes: u64,
    seed: u64,
    start_at: Time,
    duration: Duration,
) -> AttributionResult {
    let mut tb = testbed(cc, true, false, 5, seed);
    let receiver = tb.hosts[3][0];
    let vs = tb.hosts[0][4];
    let vr = tb.hosts[1][0];
    let f = cc.factory();
    tb.net.enable_spans(256);
    for i in 0..4 {
        let fl = tb.net.add_flow(tb.hosts[0][i], receiver, DATA_PRIORITY, &f);
        tb.net.send_message(fl, u64::MAX, Time::ZERO);
    }
    for i in 0..t3_senders {
        let fl = tb.net.add_flow(tb.hosts[2][i], receiver, DATA_PRIORITY, &f);
        tb.net.send_message(fl, u64::MAX, Time::ZERO);
    }
    let victim = tb.net.add_flow(vs, vr, DATA_PRIORITY, &f);
    tb.net.send_message(victim, victim_bytes, start_at);
    tb.net.run_until(Time::ZERO + duration);

    let completion = tb.net.spans().completion(victim);
    let breakdown = completion
        .map(|c| c.accum)
        .or_else(|| tb.net.span_breakdown(victim))
        .unwrap_or([Duration::ZERO; NUM_SPAN_STATES]);
    AttributionResult {
        completed: completion.is_some(),
        fct: completion.map_or(Duration::ZERO, |c| c.fct),
        breakdown,
        tree: tb.net.congestion_tree(),
        trace: tb.net.chrome_trace(),
        telemetry: tb.net.telemetry_report(),
    }
}

/// The Figure 3 unfairness scenario with causal tracing: returns H1's
/// (a T1 sender sharing T4's uplinks) span-attributed time breakdown
/// over the whole run — under PFC alone it is dominated by
/// `pause_blocked`, under an end-to-end scheme by `throttled`.
pub fn unfairness_attribution(
    cc: CcChoice,
    seed: u64,
    duration: Duration,
) -> [Duration; NUM_SPAN_STATES] {
    let mut tb = testbed(cc, true, false, 5, seed);
    let senders = [
        tb.hosts[0][0],
        tb.hosts[0][1],
        tb.hosts[0][2],
        tb.hosts[3][0],
    ];
    let receiver = tb.hosts[3][1];
    let f = cc.factory();
    tb.net.enable_spans(256);
    let flows: Vec<FlowId> = senders
        .iter()
        .map(|&h| tb.net.add_flow(h, receiver, DATA_PRIORITY, &f))
        .collect();
    for &fl in &flows {
        tb.net.send_message(fl, u64::MAX, Time::ZERO);
    }
    tb.net.run_until(Time::ZERO + duration);
    tb.net
        .span_breakdown(flows[0])
        .unwrap_or([Duration::ZERO; NUM_SPAN_STATES])
}

/// Configuration of a §6.2 benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct BenchmarkConfig {
    /// Congestion control scheme.
    pub cc: CcChoice,
    /// Communicating user pairs.
    pub pairs: usize,
    /// Incast (disk-rebuild) degree; 0 disables the incast.
    pub incast_degree: usize,
    /// Run length.
    pub duration: Duration,
    /// PFC enabled?
    pub pfc: bool,
    /// Misconfigured buffer thresholds (§6.2)?
    pub misconfigured: bool,
    /// NAK-capable receivers (disable to model timeout-only ConnectX-3
    /// recovery).
    pub nack_enabled: bool,
    /// Seed for topology randomness and workload draws.
    pub seed: u64,
}

/// Results of a benchmark run.
#[derive(Debug, Clone)]
pub struct BenchmarkResult {
    /// Goodput (Gbps) of each completed user transfer ≥ 1 MB.
    pub user_goodputs: Vec<f64>,
    /// Average goodput (Gbps) of each incast flow over the measurement
    /// window.
    pub incast_goodputs: Vec<f64>,
    /// PAUSE frames received at the two spines.
    pub spine_pause_rx: u64,
    /// Total packet drops across all switches.
    pub drops: u64,
    /// Total retransmitted packets.
    pub retx: u64,
    /// Total retransmission timeouts.
    pub timeouts: u64,
    /// Flows torn down after exhausting the transport retry budget.
    pub aborted: u64,
    /// Total events executed (cost accounting).
    pub events: u64,
    /// The run's full telemetry report for `--json` output.
    pub telemetry: Json,
}

/// Runs the §6.2 benchmark: 20 hosts (5 per rack), `pairs` user pairs
/// with trace-like transfer sizes, plus one disk-rebuild incast.
pub fn benchmark_run(cfg: &BenchmarkConfig) -> BenchmarkResult {
    let mut tb = {
        let mut host_cfg = cfg.cc.host_config();
        host_cfg.nack_enabled = cfg.nack_enabled;
        clos_testbed(
            5,
            LinkParams::default(),
            host_cfg,
            cfg.cc.switch_config(cfg.pfc, cfg.misconfigured),
            cfg.seed,
        )
    };
    let hosts: Vec<NodeId> = tb.hosts.iter().flatten().copied().collect();
    let f = cfg.cc.factory();

    let user_cfg = UserTrafficConfig {
        mean_interarrival: Duration::from_micros(4000),
        ..UserTrafficConfig::benchmark(cfg.pairs, cfg.duration)
    };
    let pairs = setup_user_traffic(&mut tb.net, &hosts, &user_cfg, &f, cfg.seed ^ 0xA5A5);

    let incast_flows = if cfg.incast_degree > 0 {
        let target = workloads::traffic::pick_one(&hosts, cfg.seed ^ 0x1111);
        // Enough bytes that the rebuild outlasts the run.
        let bytes = (cfg.duration.as_secs_f64() * 40e9 / 8.0) as u64;
        setup_incast(
            &mut tb.net,
            &hosts,
            target,
            cfg.incast_degree,
            bytes,
            Time::ZERO,
            DATA_PRIORITY,
            &f,
            cfg.seed ^ 0x2222,
        )
    } else {
        Vec::new()
    };

    tb.net.enable_sampling(
        Duration::from_micros(1000),
        SamplerConfig {
            all_flows: true,
            ..SamplerConfig::default()
        },
    );
    let end = Time::ZERO + cfg.duration;
    tb.net.run_until(end);

    let user_flows: Vec<FlowId> = pairs.iter().map(|p| p.flow).collect();
    let warmup = Time::ZERO + cfg.duration / 5;
    let mut drops = 0;
    let mut pause_rx_spines = 0;
    for &s in tb.tors.iter().chain(&tb.leaves).chain(&tb.spines) {
        let st = tb.net.switch_stats(s);
        drops += st.drops_pool + st.drops_lossy;
    }
    for &s in &tb.spines {
        pause_rx_spines += tb.net.switch_stats(s).pause_rx;
    }
    let (mut retx, mut timeouts, mut aborted) = (0, 0, 0);
    for fl in user_flows.iter().chain(&incast_flows) {
        let st = tb.net.flow_stats(*fl);
        retx += st.retx_pkts;
        timeouts += st.timeouts;
        aborted += st.aborted as u64;
    }

    BenchmarkResult {
        user_goodputs: transfer_goodputs(&tb.net, &user_flows, 1_000_000),
        incast_goodputs: flow_goodputs(&tb.net, &incast_flows, warmup, end),
        spine_pause_rx: pause_rx_spines,
        drops,
        retx,
        timeouts,
        aborted,
        events: tb.net.events_executed(),
        telemetry: tb.net.telemetry_report(),
    }
}

/// Results of a [`link_flap_run`]: a goodput timeline plus the
/// degradation counters the run produced.
#[derive(Debug, Clone)]
pub struct LinkFlapResult {
    /// Aggregate goodput (Gbps) across all flows, in 1 ms bins.
    pub bins: Vec<f64>,
    /// Flows that exhausted their transport retries and tore down —
    /// the telemetry registry's `qp_teardowns` counter.
    pub aborts: usize,
    /// Route recomputations triggered by link transitions.
    pub reroutes: u64,
    /// Fault-tagged wire drops — the telemetry registry's `fault_drops`
    /// counter (the flap is the only fault installed, so every tagged
    /// drop is a link-down drop).
    pub link_drops: u64,
    /// The run's full telemetry report for `--json` output.
    pub telemetry: Json,
}

/// A fabric link (T1–L1) flaps mid-run while eight inter-pod flows cross
/// it. With route failover the survivors of T1's ECMP set absorb the
/// traffic within an RTO; without it, flows hashed onto the dead next-hop
/// black-hole, back off exponentially, and abort once `max_retries` is
/// spent. The flap window (`down_at`..`up_at`) is sized by the caller so
/// that black-holed QPs exhaust their budget before the link returns.
pub fn link_flap_run(
    cc: CcChoice,
    failover: bool,
    seed: u64,
    down_at: Time,
    up_at: Time,
    duration: Duration,
) -> LinkFlapResult {
    let mut tb = {
        // A tight transport budget keeps the abort schedule inside the
        // flap window: fatal timer at down + (1+1+2+4)·rto = down + 4 ms.
        let mut host_cfg = cc.host_config();
        host_cfg.rto = Duration::from_micros(500);
        host_cfg.max_retries = 3;
        clos_testbed(
            2,
            LinkParams::default(),
            host_cfg,
            cc.switch_config(true, false),
            seed,
        )
    };
    let f = cc.factory();
    let flows: Vec<FlowId> = (0..8)
        .map(|i| {
            let src = tb.hosts[0][i % 2];
            let dst = tb.hosts[3][(i / 2) % 2];
            let fl = tb.net.add_flow(src, dst, DATA_PRIORITY, &f);
            tb.net.send_message(fl, u64::MAX, Time::ZERO);
            fl
        })
        .collect();
    let link = tb
        .net
        .link_between(tb.tors[0], tb.leaves[0])
        .expect("T1–L1 is a fabric link");
    let plan = FaultPlan::new()
        .link_down(down_at, link)
        .link_up(up_at, link);
    tb.net.install_faults(
        &plan,
        FaultConfig {
            failover,
            ..FaultConfig::default()
        },
    );
    tb.net.enable_sampling(
        Duration::from_micros(200),
        SamplerConfig {
            all_flows: true,
            ..SamplerConfig::default()
        },
    );
    let end = Time::ZERO + duration;
    tb.net.run_until(end);

    let bin = Duration::from_millis(1);
    let nbins = (duration.as_secs_f64() / bin.as_secs_f64()).round() as usize;
    let bins: Vec<f64> = (0..nbins)
        .map(|i| {
            let from = Time::ZERO + bin.saturating_mul(i as u64);
            let to = from + bin;
            flows
                .iter()
                .map(|&fl| tb.net.goodput_gbps(fl, from, to))
                .sum()
        })
        .collect();
    // Degradation counters come straight from the telemetry registry —
    // the same numbers any `--json` consumer sees — instead of being
    // re-derived from per-flow stats or the packet trace.
    let fs = tb.net.fault_stats();
    LinkFlapResult {
        bins,
        aborts: tb.net.metric("qp_teardowns") as usize,
        reroutes: fs.reroutes,
        link_drops: tb.net.metric("fault_drops"),
        telemetry: tb.net.telemetry_report(),
    }
}

/// Results of a [`pause_storm_victim_run`].
#[derive(Debug, Clone)]
pub struct PauseStormResult {
    /// Victim goodput (Gbps) while the storm is active.
    pub victim_storm_gbps: f64,
    /// Victim goodput (Gbps) after the storm ends.
    pub victim_after_gbps: f64,
    /// PAUSE frames received at the two spines (congestion spreading).
    pub spine_pause_rx: u64,
    /// Watchdog trips — the telemetry registry's `watchdog_trips`
    /// counter.
    pub watchdog_trips: u64,
    /// Watchdog restores — the telemetry registry's `watchdog_restores`
    /// counter.
    pub watchdog_restores: u64,
    /// The run's full telemetry report for `--json` output.
    pub telemetry: Json,
}

/// The §2.2 victim-flow topology under a malfunctioning NIC instead of an
/// incast: the receiver R under T4 pause-storms its access link, freezing
/// T4's egress to it. Traffic from the two T1 senders backs up through
/// the fabric exactly like Figure 4's congestion spreading — T4 pauses
/// the leaves, the leaves pause the spines, and eventually T1's uplinks
/// stall, collapsing the victim flow VS(T1)→VR(T2) whose path never
/// touches R. A PFC storm watchdog on every switch breaks the chain at
/// its root; DCQCN additionally drains the senders via ECN.
pub fn pause_storm_victim_run(
    cc: CcChoice,
    watchdog: Option<PfcWatchdogConfig>,
    seed: u64,
    storm_from: Time,
    storm_until: Time,
    duration: Duration,
) -> PauseStormResult {
    let mut tb = {
        let mut switch_cfg = cc.switch_config(true, false);
        switch_cfg.watchdog = watchdog;
        clos_testbed(3, LinkParams::default(), cc.host_config(), switch_cfg, seed)
    };
    let storm_host = tb.hosts[3][0];
    let f = cc.factory();
    for i in 0..2 {
        let fl = tb
            .net
            .add_flow(tb.hosts[0][i], storm_host, DATA_PRIORITY, &f);
        tb.net.send_message(fl, u64::MAX, Time::ZERO);
    }
    let victim = tb
        .net
        .add_flow(tb.hosts[0][2], tb.hosts[1][0], DATA_PRIORITY, &f);
    tb.net.send_message(victim, u64::MAX, Time::ZERO);

    let plan = FaultPlan::new().pause_storm(
        storm_host,
        DATA_PRIORITY,
        storm_from,
        storm_until,
        Duration::from_micros(20),
    );
    tb.net.install_faults(&plan, FaultConfig::default());
    tb.net.enable_sampling(
        Duration::from_micros(200),
        SamplerConfig {
            all_flows: true,
            ..SamplerConfig::default()
        },
    );
    let end = Time::ZERO + duration;
    tb.net.run_until(end);

    // Spine PAUSE counts need per-node attribution, so they stay on the
    // per-switch stats; the fabric-wide watchdog counters come from the
    // telemetry registry, same as any `--json` consumer sees them.
    let mut spine_pause_rx = 0;
    for &s in &tb.spines {
        spine_pause_rx += tb.net.switch_stats(s).pause_rx;
    }
    // Skip the first fifth of the storm window so the measurement sees
    // the spread congestion, not the pre-storm residue.
    let settle = Duration::from_micros(((storm_until - storm_from).as_secs_f64() * 2e5) as u64);
    PauseStormResult {
        victim_storm_gbps: tb
            .net
            .goodput_gbps(victim, storm_from + settle, storm_until),
        victim_after_gbps: tb
            .net
            .goodput_gbps(victim, storm_until + Duration::from_millis(1), end),
        spine_pause_rx,
        watchdog_trips: tb.net.metric("watchdog_trips"),
        watchdog_restores: tb.net.metric("watchdog_restores"),
        telemetry: tb.net.telemetry_report(),
    }
}
