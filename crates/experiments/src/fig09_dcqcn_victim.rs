//! Figure 9: DCQCN removes the Figure 4 victim-flow problem — the victim's
//! throughput no longer collapses as remote senders are added.

use crate::common::{banner, CcChoice, RunScale};
use crate::fig04_victim_flow::run_with;

/// Runs the experiment.
pub fn run(quick: bool) {
    banner("fig9", "DCQCN fixes the victim flow of Figure 4");
    run_with(CcChoice::dcqcn_paper(), RunScale { quick });
}
