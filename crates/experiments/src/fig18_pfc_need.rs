//! Figure 18: DCQCN still needs PFC, and needs *correctly configured*
//! buffer thresholds — 10th-percentile throughput for four
//! configurations under an 8:1 incast plus user traffic:
//!
//! * No DCQCN (PFC only),
//! * DCQCN without PFC (lossy fabric, go-back-N losses),
//! * DCQCN with misconfigured thresholds (PFC fires before ECN),
//! * DCQCN proper.

use crate::common::{banner, CcChoice, RunScale};
use crate::runner::par_map;
use crate::scenarios::{benchmark_run, BenchmarkConfig};
use netsim::stats::percentile;

/// Runs the experiment.
pub fn run(quick: bool) {
    banner("fig18", "need for PFC and correct thresholds (8:1 incast)");
    let scale = RunScale { quick };
    let duration = scale.dur(300, 800);
    // (label, cc, pfc, misconfigured, NAK-capable receiver)
    let configs: [(&str, CcChoice, bool, bool, bool); 5] = [
        ("No DCQCN", CcChoice::None, true, false, true),
        (
            "DCQCN without PFC",
            CcChoice::dcqcn_paper(),
            false,
            false,
            true,
        ),
        (
            "  (timeout-only NICs)",
            CcChoice::dcqcn_paper(),
            false,
            false,
            false,
        ),
        (
            "DCQCN (misconfigured)",
            CcChoice::dcqcn_paper(),
            true,
            true,
            true,
        ),
        ("DCQCN", CcChoice::dcqcn_paper(), true, false, true),
    ];
    println!(
        "{:<22} | {:>9} {:>11} | {:>7} {:>7} {:>9} {:>6}",
        "configuration", "user 10th", "incast 10th", "drops", "retx", "pauses", "dead"
    );
    let results = par_map(&configs, |&(_, cc, pfc, misconfig, nack)| {
        benchmark_run(&BenchmarkConfig {
            cc,
            pairs: 20,
            incast_degree: 8,
            duration,
            pfc,
            misconfigured: misconfig,
            nack_enabled: nack,
            seed: 9,
        })
    });
    for ((label, ..), r) in configs.iter().zip(&results) {
        println!(
            "{:<22} | {:>9.2} {:>11.2} | {:>7} {:>7} {:>9} {:>6}",
            label,
            percentile(&r.user_goodputs, 10.0),
            percentile(&r.incast_goodputs, 10.0),
            r.drops,
            r.retx,
            r.spine_pause_rx,
            r.aborted
        );
    }
    println!("paper: without PFC, losses crater the incast tail (10th pct ~ 0 on");
    println!("ConnectX-3-era NICs, whose recovery was timeout-driven — the");
    println!("timeout-only row); misconfigured thresholds land between PFC-only");
    println!("and proper DCQCN.");
}
