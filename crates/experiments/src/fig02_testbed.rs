//! Figure 2: the 3-tier Clos testbed — builds it and prints the wiring
//! plus ECMP route multiplicities (validated further by integration
//! tests).

use crate::common::{banner, CcChoice};
use crate::scenarios::testbed;
use netsim::network::Node;

/// Runs the experiment.
pub fn run(_quick: bool) {
    banner(
        "fig2",
        "3-tier Clos testbed (4 ToRs, 4 leaves, 2 spines, 40G)",
    );
    let tb = testbed(CcChoice::dcqcn_paper(), true, false, 5, 1);
    let (mut switches, mut hosts) = (0, 0);
    for n in &tb.net.nodes {
        match n {
            Node::Switch(_) => switches += 1,
            Node::Host(_) => hosts += 1,
        }
    }
    println!("nodes: {switches} switches + {hosts} hosts");
    // ECMP multiplicity along an inter-pod path: T1 → (L1,L2) → (S1,S2).
    let t1 = tb.net.switch(tb.tors[0]);
    let far_host = tb.hosts[3][0];
    let up = t1.routes.get(&far_host).map_or(0, |p| p.len());
    let l1 = tb.net.switch(tb.leaves[0]);
    let spine_up = l1.routes.get(&far_host).map_or(0, |p| p.len());
    println!("ECMP: T1 has {up} equal-cost uplinks toward T4-rack hosts; L1 has {spine_up} toward spines");
    let local = tb.hosts[0][0];
    let down = t1.routes.get(&local).map_or(0, |p| p.len());
    println!("      T1 has {down} route to its own rack host (direct)");
    assert_eq!((up, spine_up, down), (2, 2, 1));
    println!("wiring matches Figure 2.");
}
