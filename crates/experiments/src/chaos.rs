//! `repro chaos` — the chaos campaign: randomized fault scenarios with
//! convergence auditing, automatic case shrinking, and replayable repro
//! files.
//!
//! ```text
//! repro chaos [--seed N] [--cases N] [--quick] [--out DIR]
//! repro chaos --replay FILE
//! ```
//!
//! A campaign generates `--cases` scenarios from `--seed` (topology,
//! workload, CC scheme, fault schedule — see `netsim::chaos`), runs them
//! in parallel via [`runner::par_map`], and audits each for post-fault
//! convergence. Every failing case is shrunk to a minimal reproduction
//! and written as `CHAOS_REPRO_<seed>.json` under `--out` (default
//! `chaos_out/`); `--replay` re-runs such a file bit-for-bit.
//!
//! The campaign summary on stdout is deterministic: results are emitted
//! in case order and contain only simulation-derived values, so the
//! bytes are identical across `REPRO_THREADS` settings.

use std::path::{Path, PathBuf};

use baselines::dctcp::DctcpParams;
use baselines::timely::TimelyParams;
use netsim::chaos::{
    chaos_host_config, generate_case, run_case, shrink_case, CaseReport, CcName, ChaosCase,
};
use netsim::host::HostConfig;
use netsim::switch::SwitchConfig;
use netsim::telemetry::Json;

use crate::common::CcChoice;
use crate::runner;

/// Maps a case's scheme name to a configured [`CcChoice`].
fn choice_for(cc: CcName) -> CcChoice {
    match cc {
        CcName::None => CcChoice::None,
        CcName::Dcqcn => CcChoice::dcqcn_paper(),
        CcName::Dctcp => CcChoice::Dctcp(DctcpParams::default_40g()),
        CcName::Timely => CcChoice::Timely(TimelyParams::default_40g()),
    }
}

/// The scheme's host config with the chaos executor's recovery timing
/// (short RTO, capped backoff) overlaid, so the settling window always
/// covers the worst-case retry gap.
fn host_config_for(cc: CcName) -> HostConfig {
    let timing = chaos_host_config();
    HostConfig {
        rto: timing.rto,
        rto_backoff_cap: timing.rto_backoff_cap,
        max_retries: timing.max_retries,
        ..choice_for(cc).host_config()
    }
}

fn switch_config_for(cc: CcName) -> SwitchConfig {
    choice_for(cc).switch_config(true, false)
}

/// Executes one case with the scheme-appropriate configuration.
pub fn execute(case: &ChaosCase) -> Result<CaseReport, String> {
    run_case(
        case,
        host_config_for(case.cc),
        switch_config_for(case.cc),
        &choice_for(case.cc).factory(),
    )
}

/// Result of a whole campaign.
pub struct CampaignOutcome {
    /// The deterministic summary text (also printed to stdout).
    pub summary: String,
    /// Repro files written, one per failing case.
    pub repro_files: Vec<PathBuf>,
}

/// Runs a campaign: generate, execute in parallel, shrink failures,
/// write repro files. Pure function of `(seed, cases, quick)` except
/// for the files it writes under `out_dir`.
pub fn campaign(seed: u64, cases: u64, quick: bool, out_dir: &Path) -> CampaignOutcome {
    let specs: Vec<ChaosCase> = (0..cases).map(|i| generate_case(seed, i, quick)).collect();
    let results = runner::par_map(&specs, execute);

    let mut summary = String::new();
    summary.push_str(&format!(
        "chaos campaign: seed={seed} cases={cases} quick={quick}\n"
    ));
    let mut failures: Vec<&ChaosCase> = Vec::new();
    for (i, (case, result)) in specs.iter().zip(&results).enumerate() {
        match result {
            Ok(report) => {
                summary.push_str(&format!(
                    "case {i:03}: {} -> {}\n",
                    case.describe(),
                    report.describe()
                ));
                if !report.converged() {
                    failures.push(case);
                }
            }
            Err(e) => {
                summary.push_str(&format!("case {i:03}: {} -> ERROR {e}\n", case.describe()));
                failures.push(case);
            }
        }
    }

    // Shrink every failure to a minimal reproduction and write it out.
    // Sequential on purpose: failures are rare and the shrink order must
    // not depend on scheduling.
    let mut repro_files = Vec::new();
    for case in &failures {
        let fails = |c: &ChaosCase| match execute(c) {
            Ok(r) => !r.converged(),
            Err(_) => true,
        };
        let minimal = shrink_case(case, &mut { fails });
        let name = format!("CHAOS_REPRO_{:016x}.json", minimal.seed);
        summary.push_str(&format!(
            "shrunk {:#018x}: {} faults, {} flows, {} us -> {name}\n",
            minimal.seed,
            minimal.faults.len(),
            minimal.flows.len(),
            minimal.duration_us
        ));
        let path = out_dir.join(&name);
        if let Err(e) = std::fs::create_dir_all(out_dir)
            .and_then(|()| std::fs::write(&path, minimal.to_json().render()))
        {
            eprintln!("cannot write {}: {e}", path.display());
        } else {
            repro_files.push(path);
        }
    }

    summary.push_str(&format!(
        "{}/{} cases converged, {} failed\n",
        cases as usize - failures.len(),
        cases,
        failures.len()
    ));
    CampaignOutcome {
        summary,
        repro_files,
    }
}

/// Replays a repro file. Returns the report, or an error for an
/// unreadable/invalid file.
pub fn replay(path: &Path) -> Result<(ChaosCase, CaseReport), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let case = ChaosCase::from_json(&Json::parse(&text)?)?;
    let report = execute(&case)?;
    Ok((case, report))
}

fn cli_usage() {
    eprintln!("usage: repro chaos [--seed N] [--cases N] [--quick] [--out DIR]");
    eprintln!("       repro chaos --replay FILE");
}

/// The `repro chaos` entry point. Returns the process exit status:
/// 0 = all cases converged, 1 = at least one failure, 2 = usage error.
pub fn cli(args: &[String]) -> i32 {
    let mut seed: u64 = 1;
    let mut cases: u64 = 25;
    let mut quick = false;
    let mut out_dir = PathBuf::from("chaos_out");
    let mut replay_file: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed requires an integer");
                    cli_usage();
                    return 2;
                }
            },
            "--cases" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => cases = v,
                _ => {
                    eprintln!("--cases requires a positive integer");
                    cli_usage();
                    return 2;
                }
            },
            "--out" => match it.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => {
                    eprintln!("--out requires a directory");
                    cli_usage();
                    return 2;
                }
            },
            "--replay" => match it.next() {
                Some(f) => replay_file = Some(PathBuf::from(f)),
                None => {
                    eprintln!("--replay requires a file");
                    cli_usage();
                    return 2;
                }
            },
            other => {
                eprintln!("unknown argument '{other}'");
                cli_usage();
                return 2;
            }
        }
    }

    if let Some(path) = replay_file {
        return match replay(&path) {
            Ok((case, report)) => {
                println!("replay {}: {}", case.describe(), report.describe());
                for v in &report.violations {
                    println!("  violation at {:?}: {}", v.at, v.context);
                }
                i32::from(!report.converged())
            }
            Err(e) => {
                eprintln!("{e}");
                2
            }
        };
    }

    let outcome = campaign(seed, cases, quick, &out_dir);
    print!("{}", outcome.summary);
    i32::from(!outcome.repro_files.is_empty() || outcome.summary.contains("-> FAIL"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scheme_maps_to_configs() {
        for cc in [CcName::None, CcName::Dcqcn, CcName::Dctcp, CcName::Timely] {
            let h = host_config_for(cc);
            assert_eq!(h.rto, chaos_host_config().rto);
            // The scheme's own knobs survive the overlay.
            if cc == CcName::Dcqcn {
                assert!(h.cnp_interval.is_some());
            }
            let _ = switch_config_for(cc);
            let _ = choice_for(cc).factory();
        }
    }

    #[test]
    fn single_case_executes_and_converges() {
        // Case 0 of seed 1 in quick mode: small, must converge — the
        // generator's vocabulary only schedules faults that clear.
        let case = generate_case(1, 0, true);
        let report = execute(&case).expect("valid generated case");
        assert!(
            report.converged(),
            "generated case should converge: {:?}",
            report
                .violations
                .iter()
                .map(|v| &v.context)
                .collect::<Vec<_>>()
        );
    }
}
