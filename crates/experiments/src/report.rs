//! Machine-readable run reports — the sink behind `repro --json <dir>`.
//!
//! When a sink is active, [`crate::dispatch`] opens a report before an
//! experiment runs and finalizes it afterwards; experiment modules add
//! top-level keys with [`put`] as they aggregate their results. Rendering
//! goes through [`netsim::telemetry::Json`], whose sorted-key, fixed
//! float formatting makes a report a pure function of the run results —
//! and the runs themselves are pure functions of config + seed, so a
//! report is byte-identical across `REPRO_THREADS` settings (pinned by
//! `tests/json_report.rs` and the CI `json-determinism` job).
//!
//! With no sink active every call here is a cheap no-op, so experiment
//! code calls [`put`] unconditionally.

use netsim::telemetry::Json;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Collector state behind the process-wide lock. `current` only lives
/// between `begin` and `finish`, which `dispatch` calls from one thread;
/// worker threads never touch the collector.
struct State {
    dir: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    dash_dir: Option<PathBuf>,
    capture: bool,
    current: Option<Vec<(String, Json)>>,
    current_id: Option<String>,
    captured: Vec<(String, String)>,
}

static STATE: Mutex<State> = Mutex::new(State {
    dir: None,
    trace_dir: None,
    dash_dir: None,
    capture: false,
    current: None,
    current_id: None,
    captured: Vec::new(),
});

/// Enables report emission: every dispatched experiment writes
/// `<dir>/<id>.json`. Creates the directory if needed.
pub fn set_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    STATE.lock().unwrap().dir = Some(dir.to_path_buf());
    Ok(())
}

/// Is any sink (output directory or test capture) active?
pub fn enabled() -> bool {
    let s = STATE.lock().unwrap();
    s.dir.is_some() || s.capture
}

/// Enables Chrome-trace emission (`repro <id> --trace <dir>`): an
/// experiment that exports a causal trace writes
/// `<dir>/<id>.trace.json`. Creates the directory if needed.
pub fn set_trace_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    STATE.lock().unwrap().trace_dir = Some(dir.to_path_buf());
    Ok(())
}

/// Is a Chrome-trace sink active? Experiments gate their (serial)
/// trace-producing attribution runs on this where the trace is the only
/// consumer.
pub fn trace_enabled() -> bool {
    STATE.lock().unwrap().trace_dir.is_some()
}

/// Writes the dispatched experiment's Chrome trace to
/// `<trace dir>/<id>.trace.json` (no-op without a trace sink). The
/// render is a pure function of the run results and experiments export
/// from the dispatch thread, so the file is byte-identical across
/// `REPRO_THREADS` settings (the CI `trace-determinism` job pins this).
pub fn put_trace(trace: &Json) {
    let s = STATE.lock().unwrap();
    let (Some(dir), Some(id)) = (&s.trace_dir, &s.current_id) else {
        return;
    };
    let path = dir.join(format!("{id}.trace.json"));
    if let Err(e) = std::fs::write(&path, trace.render()) {
        eprintln!("report: cannot write {}: {e}", path.display());
    }
}

/// Enables dashboard emission (`repro <id> --dash <dir>`): an experiment
/// that renders a dashboard writes `<dir>/<id>.html`. Creates the
/// directory if needed.
pub fn set_dash_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    STATE.lock().unwrap().dash_dir = Some(dir.to_path_buf());
    Ok(())
}

/// Is a dashboard sink active? Experiments gate their (serial)
/// dashboard-producing representative runs on this.
pub fn dash_enabled() -> bool {
    STATE.lock().unwrap().dash_dir.is_some()
}

/// Writes the dispatched experiment's dashboard to `<dash dir>/<id>.html`
/// (no-op without a dashboard sink). The render is a pure function of the
/// run results and experiments render from the dispatch thread, so the
/// file is byte-identical across `REPRO_THREADS` settings (the CI
/// `dash-determinism` job pins this).
pub fn put_dash(dash: &netsim::telemetry::Dashboard) {
    let s = STATE.lock().unwrap();
    let (Some(dir), Some(id)) = (&s.dash_dir, &s.current_id) else {
        return;
    };
    let path = dir.join(format!("{id}.html"));
    if let Err(e) = std::fs::write(&path, dash.render()) {
        eprintln!("report: cannot write {}: {e}", path.display());
    }
}

/// Opens a report for the experiment about to run (no-op without a sink;
/// the experiment id is remembered either way so [`put_trace`] can name
/// its output file).
pub(crate) fn begin(id: &str) {
    let mut s = STATE.lock().unwrap();
    s.current_id = Some(id.to_string());
    if s.dir.is_some() || s.capture {
        s.current = Some(Vec::new());
    }
}

/// Adds (or replaces) one top-level key in the open report. No-op when
/// reporting is off, so experiments call it unconditionally.
pub fn put(key: &str, value: Json) {
    let mut s = STATE.lock().unwrap();
    if let Some(cur) = s.current.as_mut() {
        if let Some(slot) = cur.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            cur.push((key.to_string(), value));
        }
    }
}

/// Finalizes the open report: stamps `id` and `quick`, renders it, and
/// writes `<dir>/<id>.json` and/or stores it for [`capture`].
pub(crate) fn finish(id: &str, quick: bool) {
    let mut s = STATE.lock().unwrap();
    s.current_id = None;
    let Some(mut pairs) = s.current.take() else {
        return;
    };
    pairs.push(("id".to_string(), Json::from(id)));
    pairs.push(("quick".to_string(), Json::from(quick)));
    let rendered = Json::Obj(pairs).render();
    if let Some(dir) = &s.dir {
        let path = dir.join(format!("{id}.json"));
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("report: cannot write {}: {e}", path.display());
        }
    }
    if s.capture {
        s.captured.push((id.to_string(), rendered));
    }
}

/// Drops the open report (unknown experiment id).
pub(crate) fn discard() {
    let mut s = STATE.lock().unwrap();
    s.current = None;
    s.current_id = None;
}

/// Runs experiment `id` with in-memory capture and returns its rendered
/// report — the hook the determinism tests compare across
/// `REPRO_THREADS` settings. Returns `None` for unknown ids.
pub fn capture(id: &str, quick: bool) -> Option<String> {
    {
        let mut s = STATE.lock().unwrap();
        s.capture = true;
        s.captured.clear();
    }
    let known = crate::dispatch(id, quick);
    let mut s = STATE.lock().unwrap();
    s.capture = false;
    let out = s
        .captured
        .iter()
        .find(|(i, _)| i == id)
        .map(|(_, r)| r.clone());
    s.captured.clear();
    if known {
        out
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_sink_and_unknown_ids_are_harmless() {
        assert!(capture("fig99", true).is_none());
        // No sink configured after the capture window closes: put is a
        // no-op and nothing reports as enabled.
        put("orphan", Json::from(1u64));
        assert!(!enabled());
    }
}
