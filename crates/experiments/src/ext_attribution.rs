//! Extension: causal FCT attribution — decompose the Figure 4 victim's
//! completion time into named causes and fold the PAUSE traffic into a
//! congestion tree naming the root port.
//!
//! The span tracer attributes every instant of the victim's life to one
//! state (serializing, queued, pause-blocked, throttled, retransmitting,
//! timed out, idle), so the FCT decomposes *exactly*:
//! `fct = serialize + queue + pause_blocked + throttled + retx + idle`.
//! Under PFC alone the victim's dominant cause is `pause_blocked` —
//! congestion spreading in one number; DCQCN shifts it to `throttled`
//! (its own CNP-driven rate limiter, not someone else's PAUSE).

use crate::common::{banner, breakdown_json, print_breakdown, CcChoice, RunScale};
use crate::report;
use crate::scenarios::attribution_run;
use netsim::telemetry::Json;
use netsim::units::{Duration, Time};

/// Runs the experiment.
pub fn run(quick: bool) {
    banner(
        "ext-attribution",
        "causal FCT attribution of the Fig. 4 victim",
    );
    let scale = RunScale { quick };
    let seed = 1u64;
    let mut schemes = Vec::new();
    for cc in [CcChoice::None, CcChoice::dcqcn_paper()] {
        let (extra_dur, extra_warm) = match cc {
            CcChoice::Dcqcn(_) => (Duration::from_millis(200), Duration::from_millis(150)),
            _ => (Duration::ZERO, Duration::ZERO),
        };
        let start_at = Time::ZERO + Duration::from_millis(scale.pick(50, 80)) + extra_warm;
        let duration = scale.dur(150, 250) + extra_dur;
        let att = attribution_run(cc, 2, 1_000_000, seed, start_at, duration);

        println!(
            "{}: victim (VS→VR) 1 MB message, 2 senders under T3:",
            cc.label()
        );
        assert!(att.completed, "victim's finite message must complete");
        let sum: Duration = att.breakdown.iter().copied().sum();
        assert_eq!(
            sum, att.fct,
            "span durations must decompose the measured FCT exactly"
        );
        print_breakdown(&att.breakdown, att.fct);

        match att.tree.roots.first() {
            Some(root) => println!(
                "  root cause: node {} port {} (first PAUSE at {})",
                root.node.0, root.port.0, root.first_pause
            ),
            None => println!("  root cause: none (no PAUSE observed)"),
        }
        println!(
            "  congestion tree: {} root(s), {} edge(s), {} victim flow(s)",
            att.tree.roots.len(),
            att.tree.edges.len(),
            att.tree.victims.len()
        );

        schemes.push(Json::obj(vec![
            ("scheme", Json::from(cc.label())),
            ("victim_fct_us", Json::from(att.fct.as_micros_f64())),
            ("victim_breakdown_us", breakdown_json(&att.breakdown)),
            ("congestion_tree", att.tree.to_json()),
        ]));

        // Export the PFC-only run's Chrome trace: it is the one whose
        // per-port PAUSE instants show the congestion spreading.
        if matches!(cc, CcChoice::None) {
            report::put_trace(&att.trace);
        }
    }
    report::put("schemes", Json::Arr(schemes));
}
