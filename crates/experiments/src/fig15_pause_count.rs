//! Figure 15: PAUSE frames received at the spines under benchmark
//! traffic, with and without DCQCN — DCQCN nearly eliminates
//! congestion-spreading.

use crate::common::{banner, CcChoice, RunScale};
use crate::runner::par_map;
use crate::scenarios::{benchmark_run, BenchmarkConfig};

/// Runs the experiment.
pub fn run(quick: bool) {
    banner(
        "fig15",
        "PAUSE frames at spines, 10:1 incast + user traffic",
    );
    let scale = RunScale { quick };
    let duration = scale.dur(300, 1000);
    let ccs = [CcChoice::None, CcChoice::dcqcn_paper()];
    let results = par_map(&ccs, |&cc| {
        benchmark_run(&BenchmarkConfig {
            cc,
            pairs: 20,
            incast_degree: 10,
            duration,
            pfc: true,
            misconfigured: false,
            nack_enabled: true,
            seed: 7,
        })
    });
    for (cc, res) in ccs.iter().zip(&results) {
        println!(
            "  {:>9}: spine PAUSE rx = {:>8}  (drops {}, retx {})",
            cc.label(),
            res.spine_pause_rx,
            res.drops,
            res.retx
        );
    }
    println!("paper (2-minute run): >6,000,000 without DCQCN vs ~300 with DCQCN.");
}
