//! §5 / Figure 10 cross-validation: the fluid model and the packet
//! simulator agree on where DCQCN settles.

use dcqcn::prelude::*;
use fluid::prelude::*;
use netsim::prelude::*;
use netsim::topology::{star, LinkParams};
use netsim::units::Bandwidth;

/// Runs an n:1 packet-level incast and returns (per-flow settled goodput
/// Gbps, settled queue KB).
fn packet_incast(n: usize, millis: u64) -> (Vec<f64>, f64) {
    let p = DcqcnParams::paper();
    let mut s = star(
        n + 1,
        LinkParams::default(),
        dcqcn_host_config(p),
        SwitchConfig::paper_default().with_red(red_deployed()),
        13,
    );
    let dst = s.hosts[n];
    let flows: Vec<FlowId> = (0..n)
        .map(|i| s.net.add_flow(s.hosts[i], dst, DATA_PRIORITY, dcqcn(p)))
        .collect();
    for &f in &flows {
        s.net.send_message(f, u64::MAX, Time::ZERO);
    }
    let port = PortId(n);
    s.net.enable_sampling(
        Duration::from_micros(100),
        SamplerConfig {
            all_flows: true,
            queues: vec![(s.switch, port)],
            ..SamplerConfig::default()
        },
    );
    let end = Time::from_millis(millis);
    s.net.run_until(end);
    let from = Time::from_millis(millis / 2);
    let goodputs = flows
        .iter()
        .map(|&f| s.net.goodput_gbps(f, from, end))
        .collect();
    let tl = s.net.queue_timeline(s.switch, port).expect("sampled port");
    let q_mean = tl.mean_from(from) / 1000.0;
    (goodputs, q_mean)
}

/// The 2:1 settled rates match the fluid fixed point (C/N) on both sides.
#[test]
fn two_to_one_rates_agree() {
    let (goodputs, _) = packet_incast(2, 200);
    let total: f64 = goodputs.iter().sum();
    assert!((34.0..38.5).contains(&total), "total {total:.2} Gbps");
    for g in &goodputs {
        // Fair share is ~19.1 Gbps of goodput (wire 20 minus headers);
        // allow short-window oscillation around it.
        assert!((15.5..22.0).contains(g), "sim settled at {g:.2} Gbps");
    }
    let params = FluidParams::paper_40g();
    let mut fsim = FluidSim::incast(params, 2, 1e-6);
    let trace = fsim.run(0.5, 1e-3);
    let fluid_rate = trace.tail_mean(&trace.rates_gbps[0], 0.4);
    assert!(
        (fluid_rate - 20.0).abs() < 1.0,
        "fluid settled at {fluid_rate:.2}"
    );
}

/// The settled 2:1 queue agrees with the fluid fixed point within a small
/// factor (the paper: "these numbers align well with the DCQCN fluid
/// model").
#[test]
fn two_to_one_queue_matches_fixed_point() {
    let (_, q_sim) = packet_incast(2, 200);
    let params = FluidParams::paper_40g();
    let fp = solve(&params, 2);
    let q_fp = fp.queue_kb(&params);
    assert!(
        q_sim > q_fp * 0.5 && q_sim < q_fp * 2.5,
        "sim queue {q_sim:.1} KB vs fixed point {q_fp:.1} KB"
    );
}

/// The fixed-point marking probability is consistent with the observed
/// packet-level marking fraction at 2:1.
#[test]
fn marking_probability_matches_fixed_point() {
    let p = DcqcnParams::paper();
    let mut s = star(
        3,
        LinkParams::default(),
        dcqcn_host_config(p),
        SwitchConfig::paper_default().with_red(red_deployed()),
        13,
    );
    let dst = s.hosts[2];
    let flows: Vec<FlowId> = (0..2)
        .map(|i| s.net.add_flow(s.hosts[i], dst, DATA_PRIORITY, dcqcn(p)))
        .collect();
    for &f in &flows {
        s.net.send_message(f, u64::MAX, Time::ZERO);
    }
    s.net.run_until(Time::from_millis(200));
    let delivered: u64 = flows
        .iter()
        .map(|&f| s.net.flow_stats(f).delivered_pkts)
        .sum();
    let marked: u64 = flows.iter().map(|&f| s.net.flow_stats(f).marked_pkts).sum();
    let frac = marked as f64 / delivered as f64;
    let fp = solve(&FluidParams::paper_40g(), 2);
    assert!(
        frac > fp.p * 0.3 && frac < fp.p * 3.0,
        "observed marking {frac:.5} vs fixed point {:.5}",
        fp.p
    );
    assert!(frac < 0.01, "well under 1% as §5.1 claims");
}

/// The fluid model's convergence verdicts transfer to the packet level:
/// the strawman stays unfair in both worlds (Figure 11 / 13(a)).
#[test]
fn strawman_verdict_transfers_to_packets() {
    // Fluid verdict.
    let red = red_cutoff_strawman();
    let (_, fluid_diff) =
        two_flow_convergence(&DcqcnParams::strawman(), &red, Bandwidth::gbps(40), 0.3);
    assert!(fluid_diff > 15.0, "fluid: strawman non-convergent");

    // Packet verdict: same configuration, staggered start.
    let cc_params = DcqcnParams::strawman();
    let mut sw = SwitchConfig::paper_default();
    sw.red = red;
    let mut s = star(
        3,
        LinkParams::default(),
        dcqcn_host_config(cc_params),
        sw,
        31,
    );
    let dst = s.hosts[2];
    let f1 = s
        .net
        .add_flow(s.hosts[0], dst, DATA_PRIORITY, dcqcn(cc_params));
    let f2 = s
        .net
        .add_flow(s.hosts[1], dst, DATA_PRIORITY, dcqcn(cc_params));
    s.net.send_message(f1, u64::MAX, Time::ZERO);
    s.net.send_message(f2, u64::MAX, Time::from_millis(50));
    s.net.enable_sampling(
        Duration::from_micros(500),
        SamplerConfig {
            all_flows: true,
            ..SamplerConfig::default()
        },
    );
    s.net.run_until(Time::from_millis(400));
    let g1 = s
        .net
        .goodput_gbps(f1, Time::from_millis(200), Time::from_millis(400));
    let g2 = s
        .net
        .goodput_gbps(f2, Time::from_millis(200), Time::from_millis(400));
    assert!(
        (g1 - g2).abs() > 10.0,
        "packets: strawman stays unfair ({g1:.1} vs {g2:.1})"
    );
}
