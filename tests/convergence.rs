//! Congestion-control convergence and fairness across the schemes.

use baselines::dctcp::{dctcp, DctcpParams};
use baselines::qcn::{qcn, QcnParams};
use dcqcn::prelude::*;
use netsim::prelude::*;
use netsim::switch::QcnCpConfig;
use netsim::topology::{star, LinkParams};

/// Jain's fairness index.
fn jain(xs: &[f64]) -> f64 {
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    sum * sum / (xs.len() as f64 * sq)
}

fn incast_goodputs(
    n: usize,
    host: HostConfig,
    sw: SwitchConfig,
    cc: impl Fn(Bandwidth) -> Box<dyn netsim::cc::CongestionControl>,
    millis: u64,
) -> Vec<f64> {
    let mut s = star(n + 1, LinkParams::default(), host, sw, 3);
    let dst = s.hosts[n];
    let flows: Vec<FlowId> = (0..n)
        .map(|i| s.net.add_flow(s.hosts[i], dst, DATA_PRIORITY, &cc))
        .collect();
    for &f in &flows {
        s.net.send_message(f, u64::MAX, Time::ZERO);
    }
    s.net.enable_sampling(
        Duration::from_micros(500),
        SamplerConfig {
            all_flows: true,
            ..SamplerConfig::default()
        },
    );
    let end = Time::from_millis(millis);
    s.net.run_until(end);
    flows
        .iter()
        .map(|&f| s.net.goodput_gbps(f, Time::from_millis(millis / 2), end))
        .collect()
}

#[test]
fn dcqcn_incast_is_fair_and_efficient() {
    let p = DcqcnParams::paper();
    let g = incast_goodputs(
        4,
        dcqcn_host_config(p),
        SwitchConfig::paper_default().with_red(red_deployed()),
        dcqcn(p),
        120,
    );
    let total: f64 = g.iter().sum();
    assert!(jain(&g) > 0.95, "fairness {:.3} over {g:?}", jain(&g));
    assert!(total > 32.0, "utilization {total:.1} Gbps");
}

#[test]
fn dctcp_incast_is_fair_and_efficient() {
    let g = incast_goodputs(
        4,
        HostConfig {
            cnp_interval: None,
            ack_every: 2,
            ..HostConfig::default()
        },
        SwitchConfig::paper_default().with_red(red_cutoff_dctcp_40g()),
        dctcp(DctcpParams::default_40g()),
        120,
    );
    let total: f64 = g.iter().sum();
    assert!(jain(&g) > 0.95, "fairness {:.3} over {g:?}", jain(&g));
    assert!(total > 32.0, "utilization {total:.1} Gbps");
}

#[test]
fn qcn_incast_converges_on_l2() {
    // QCN works on a single L2 switch (its congestion point lives there);
    // §2.3's objection is that it cannot cross IP routers, not that it
    // fails on one hop.
    let mut sw = SwitchConfig::paper_default();
    sw.qcn = Some(QcnCpConfig::default());
    let g = incast_goodputs(
        4,
        HostConfig {
            cnp_interval: None,
            ..HostConfig::default()
        },
        sw,
        qcn(QcnParams::standard()),
        200,
    );
    let total: f64 = g.iter().sum();
    assert!(total > 25.0, "QCN sustains utilization: {total:.1} Gbps");
    assert!(jain(&g) > 0.8, "rough fairness {:.3} over {g:?}", jain(&g));
}

/// DCQCN's hyper-fast start: a single flow with no competition never sees
/// a mark and stays pinned at line rate (no slow-start penalty).
#[test]
fn lone_flow_runs_at_line_rate_from_packet_one() {
    let p = DcqcnParams::paper();
    let mut s = star(
        2,
        LinkParams::default(),
        dcqcn_host_config(p),
        SwitchConfig::paper_default().with_red(red_deployed()),
        1,
    );
    let f = s
        .net
        .add_flow(s.hosts[0], s.hosts[1], DATA_PRIORITY, dcqcn(p));
    s.net.send_message(f, 5_000_000, Time::ZERO);
    s.net.run_until(Time::from_millis(5));
    let st = s.net.flow_stats(f);
    assert_eq!(st.cnps_received, 0, "no feedback without congestion");
    let done = st.completions[0];
    // 5 MB at 40 Gbps wire (≈ 38.3 Gbps goodput) is ~1.04 ms.
    assert!(
        done.goodput_gbps() > 35.0,
        "hyper-fast start: {:.1} Gbps",
        done.goodput_gbps()
    );
}

/// Late joiners converge to the fair share and early flows concede it
/// (the Figure 10 scenario at the summary level).
#[test]
fn late_joiner_reaches_fair_share() {
    let p = DcqcnParams::paper();
    let mut s = star(
        3,
        LinkParams::default(),
        dcqcn_host_config(p),
        SwitchConfig::paper_default().with_red(red_deployed()),
        5,
    );
    let r = s.hosts[2];
    let f1 = s.net.add_flow(s.hosts[0], r, DATA_PRIORITY, dcqcn(p));
    let f2 = s.net.add_flow(s.hosts[1], r, DATA_PRIORITY, dcqcn(p));
    s.net.send_message(f1, u64::MAX, Time::ZERO);
    s.net.send_message(f2, u64::MAX, Time::from_millis(50));
    s.net.enable_sampling(
        Duration::from_micros(500),
        SamplerConfig {
            all_flows: true,
            ..SamplerConfig::default()
        },
    );
    s.net.run_until(Time::from_millis(250));
    let g1 = s
        .net
        .goodput_gbps(f1, Time::from_millis(150), Time::from_millis(250));
    let g2 = s
        .net
        .goodput_gbps(f2, Time::from_millis(150), Time::from_millis(250));
    assert!((g1 - g2).abs() < 4.0, "converged: {g1:.1} vs {g2:.1}");
    assert!(g1 + g2 > 30.0, "utilization: {:.1}", g1 + g2);
}

/// An idle DCQCN flow restarts at line rate (the idle-reset path).
#[test]
fn idle_flow_restarts_at_line_rate() {
    let p = DcqcnParams::paper();
    let mut s = star(
        3,
        LinkParams::default(),
        dcqcn_host_config(p),
        SwitchConfig::paper_default().with_red(red_deployed()),
        5,
    );
    let r = s.hosts[2];
    let f1 = s.net.add_flow(s.hosts[0], r, DATA_PRIORITY, dcqcn(p));
    let f2 = s.net.add_flow(s.hosts[1], r, DATA_PRIORITY, dcqcn(p));
    // Congest to drive f1's rate down, then go idle.
    s.net.send_message(f1, 20_000_000, Time::ZERO);
    s.net.send_message(f2, 20_000_000, Time::ZERO);
    s.net.run_until(Time::from_millis(60));
    // Well past the idle-reset horizon, send a fresh burst on f1 alone.
    s.net.send_message(f1, 5_000_000, Time::from_millis(60));
    s.net.run_until(Time::from_millis(90));
    let last = *s.net.flow_stats(f1).completions.last().unwrap();
    assert!(
        last.goodput_gbps() > 30.0,
        "fresh burst ran at line rate: {:.1} Gbps",
        last.goodput_gbps()
    );
}
