//! End-to-end transport (go-back-N) correctness: delivery accounting,
//! message completion, loss recovery, retry exhaustion.

use dcqcn::prelude::*;
use netsim::prelude::*;
use netsim::topology::{star, LinkParams};

fn lossless_star(n: usize, seed: u64) -> netsim::topology::Star {
    star(
        n,
        LinkParams::default(),
        HostConfig {
            cnp_interval: None,
            ..HostConfig::default()
        },
        SwitchConfig::paper_default(),
        seed,
    )
}

/// Every message completes exactly once and delivered bytes equal the sum
/// of message sizes.
#[test]
fn message_accounting_is_exact() {
    let mut s = lossless_star(3, 1);
    let f = s.net.add_flow(s.hosts[0], s.hosts[2], DATA_PRIORITY, |l| {
        Box::new(NoCc::new(l))
    });
    let sizes = [1u64, 100, 1436, 1437, 50_000, 1_000_000, 3];
    let mut at = Time::ZERO;
    for &b in &sizes {
        s.net.send_message(f, b, at);
        at += Duration::from_micros(500);
    }
    s.net.run_until(Time::from_millis(20));
    let st = s.net.flow_stats(f);
    assert_eq!(st.completions.len(), sizes.len());
    assert_eq!(st.delivered_bytes, sizes.iter().sum::<u64>());
    let completed: u64 = st.completions.iter().map(|c| c.bytes).sum();
    assert_eq!(completed, sizes.iter().sum::<u64>());
    assert_eq!(st.retx_pkts, 0, "no loss on a lossless fabric");
    assert_eq!(st.timeouts, 0);
}

/// Sub-MTU messages are a single packet; exact-MTU boundaries don't
/// produce empty packets.
#[test]
fn packetization_boundaries() {
    let mut s = lossless_star(3, 1);
    let mtu = HostConfig::default().mtu_payload;
    let f = s.net.add_flow(s.hosts[0], s.hosts[2], DATA_PRIORITY, |l| {
        Box::new(NoCc::new(l))
    });
    for b in [1, mtu - 1, mtu, mtu + 1, 2 * mtu, 2 * mtu + 1] {
        s.net.send_message(f, b, Time::ZERO);
    }
    s.net.run_until(Time::from_millis(5));
    let st = s.net.flow_stats(f);
    assert_eq!(st.completions.len(), 6);
    // 1 + 1 + 1 + 2 + 2 + 3 packets.
    assert_eq!(st.sent_pkts, 10);
    assert_eq!(st.delivered_pkts, 10);
}

/// Bidirectional traffic between the same pair of hosts works (each host
/// is sender of one flow and receiver of the other).
#[test]
fn bidirectional_flows() {
    let mut s = lossless_star(3, 2);
    let f_ab = s.net.add_flow(s.hosts[0], s.hosts[1], DATA_PRIORITY, |l| {
        Box::new(NoCc::new(l))
    });
    let f_ba = s.net.add_flow(s.hosts[1], s.hosts[0], DATA_PRIORITY, |l| {
        Box::new(NoCc::new(l))
    });
    s.net.send_message(f_ab, 5_000_000, Time::ZERO);
    s.net.send_message(f_ba, 5_000_000, Time::ZERO);
    s.net.run_until(Time::from_millis(10));
    assert_eq!(s.net.flow_stats(f_ab).delivered_bytes, 5_000_000);
    assert_eq!(s.net.flow_stats(f_ba).delivered_bytes, 5_000_000);
}

/// Many flows from one host share the NIC via round-robin and all make
/// progress.
#[test]
fn nic_round_robin_is_fair() {
    let mut s = lossless_star(3, 2);
    let flows: Vec<FlowId> = (0..8)
        .map(|_| {
            s.net.add_flow(s.hosts[0], s.hosts[2], DATA_PRIORITY, |l| {
                Box::new(NoCc::new(l))
            })
        })
        .collect();
    for &f in &flows {
        s.net.send_message(f, u64::MAX, Time::ZERO);
    }
    s.net.run_until(Time::from_millis(10));
    let goodputs: Vec<u64> = flows
        .iter()
        .map(|&f| s.net.flow_stats(f).delivered_bytes)
        .collect();
    let (min, max) = (
        *goodputs.iter().min().unwrap(),
        *goodputs.iter().max().unwrap(),
    );
    assert!(min > 0);
    assert!(
        max - min <= max / 10,
        "round-robin shares the NIC evenly: {goodputs:?}"
    );
}

/// NAK-driven go-back-N recovers from real drops (lossy fabric) with full
/// in-order delivery.
#[test]
fn nak_recovery_delivers_everything() {
    let params = DcqcnParams::paper();
    let mut s = star(
        9,
        LinkParams::default(),
        dcqcn_host_config(params),
        SwitchConfig::paper_default()
            .with_red(red_deployed())
            .without_pfc(),
        11,
    );
    let dst = s.hosts[8];
    let flows: Vec<FlowId> = (0..8)
        .map(|i| {
            s.net
                .add_flow(s.hosts[i], dst, DATA_PRIORITY, dcqcn(params))
        })
        .collect();
    for &f in &flows {
        s.net.send_message(f, 4_000_000, Time::ZERO);
    }
    s.net.run_until(Time::from_millis(200));
    let total_retx: u64 = flows.iter().map(|&f| s.net.flow_stats(f).retx_pkts).sum();
    assert!(total_retx > 0, "losses actually happened");
    for &f in &flows {
        let st = s.net.flow_stats(f);
        assert_eq!(st.delivered_bytes, 4_000_000, "no bytes lost to the app");
        assert_eq!(st.completions.len(), 1);
        assert!(!st.aborted);
    }
}

/// Timeout-only recovery (ConnectX-3 model) is strictly slower than
/// NAK-based recovery under identical loss.
#[test]
fn timeout_only_recovery_is_slower() {
    let run = |nack: bool| -> Time {
        let params = DcqcnParams::paper();
        let mut host = dcqcn_host_config(params);
        host.nack_enabled = nack;
        let mut s = star(
            9,
            LinkParams::default(),
            host,
            SwitchConfig::paper_default()
                .with_red(red_deployed())
                .without_pfc(),
            11,
        );
        let dst = s.hosts[8];
        let flows: Vec<FlowId> = (0..8)
            .map(|i| {
                s.net
                    .add_flow(s.hosts[i], dst, DATA_PRIORITY, dcqcn(params))
            })
            .collect();
        for &f in &flows {
            s.net.send_message(f, 2_000_000, Time::ZERO);
        }
        s.net.run_until(Time::from_millis(400));
        flows
            .iter()
            .filter_map(|&f| s.net.flow_stats(f).completions.first().map(|c| c.at))
            .max()
            .unwrap_or(Time::NEVER)
    };
    let with_nak = run(true);
    let without_nak = run(false);
    assert!(
        without_nak > with_nak,
        "timeout-only last completion {without_nak} vs NAK {with_nak}"
    );
}

/// With a zero retry budget and timeout-only recovery, the first loss
/// burst tears QPs down (the mechanism behind the paper's "flows simply
/// unable to recover").
#[test]
fn retry_exhaustion_kills_the_qp() {
    let params = DcqcnParams::paper();
    let mut host = dcqcn_host_config(params);
    host.nack_enabled = false;
    host.rto = Duration::from_micros(200); // far below the loss-burst scale
    host.max_retries = 0;
    let mut s = star(
        9,
        LinkParams::default(),
        host,
        SwitchConfig::paper_default()
            .with_red(red_deployed())
            .without_pfc(),
        11,
    );
    let dst = s.hosts[8];
    let flows: Vec<FlowId> = (0..8)
        .map(|i| {
            s.net
                .add_flow(s.hosts[i], dst, DATA_PRIORITY, dcqcn(params))
        })
        .collect();
    for &f in &flows {
        s.net.send_message(f, 8_000_000, Time::ZERO);
    }
    s.net.run_until(Time::from_millis(100));
    let aborted = flows
        .iter()
        .filter(|&&f| s.net.flow_stats(f).aborted)
        .count();
    assert!(aborted > 0, "some QPs exhausted their retry budget");
}

/// Flow-level goodput can never exceed the payload capacity of the
/// bottleneck link.
#[test]
fn goodput_bounded_by_capacity() {
    let mut s = lossless_star(4, 9);
    let dst = s.hosts[3];
    let flows: Vec<FlowId> = (0..3)
        .map(|i| {
            s.net
                .add_flow(s.hosts[i], dst, DATA_PRIORITY, |l| Box::new(NoCc::new(l)))
        })
        .collect();
    for &f in &flows {
        s.net.send_message(f, u64::MAX, Time::ZERO);
    }
    let horizon = Time::from_millis(20);
    s.net.run_until(horizon);
    let total: u64 = flows
        .iter()
        .map(|&f| s.net.flow_stats(f).delivered_bytes)
        .sum();
    let payload_capacity = 40e9 / 8.0 * horizon.as_secs_f64() * (1436.0 / 1500.0);
    assert!(
        (total as f64) <= payload_capacity * 1.001,
        "{total} bytes vs capacity {payload_capacity}"
    );
    assert!((total as f64) > payload_capacity * 0.95, "and uses it");
}
