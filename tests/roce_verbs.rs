//! Cross-crate integration: the verbs API running DCQCN end to end.

use netsim::topology::LinkParams;
use netsim::units::Time;
use roce::{CcMode, Rdma, RdmaConfig, WcStatus};

/// An 8:1 incast of RDMA WRITEs through queue pairs: DCQCN shares the
/// receiver fairly and every work request completes.
#[test]
fn write_incast_is_fair_through_the_verbs_api() {
    let mut rdma = Rdma::star(9, LinkParams::default(), RdmaConfig::default(), 21);
    let hosts = rdma.hosts().to_vec();
    let target = hosts[8];
    let qps: Vec<_> = (0..8).map(|i| rdma.create_qp(hosts[i], target)).collect();
    for &qp in &qps {
        rdma.post_write(qp, 20_000_000, Time::ZERO);
    }
    rdma.net.run_until(Time::from_millis(200));
    let mut goodputs = Vec::new();
    for &qp in &qps {
        let wcs = rdma.poll_cq(qp);
        assert_eq!(wcs.len(), 1, "every WR completed");
        assert_eq!(wcs[0].status, WcStatus::Success);
        goodputs.push(wcs[0].goodput_gbps());
    }
    let (min, max) = (
        goodputs.iter().cloned().fold(f64::INFINITY, f64::min),
        goodputs.iter().cloned().fold(0.0f64, f64::max),
    );
    assert!(min > 2.0, "everyone makes progress: {goodputs:?}");
    assert!(max / min < 2.0, "roughly fair: {goodputs:?}");
}

/// READs pull in the opposite direction and complete fairly too.
#[test]
fn read_fan_in_through_the_verbs_api() {
    let mut rdma = Rdma::star(5, LinkParams::default(), RdmaConfig::default(), 22);
    let hosts = rdma.hosts().to_vec();
    let initiator = hosts[4];
    // The initiator READs from four servers: the bottleneck is the
    // initiator's own downlink.
    let qps: Vec<_> = (0..4)
        .map(|i| rdma.create_qp(initiator, hosts[i]))
        .collect();
    for &qp in &qps {
        rdma.post_read(qp, 10_000_000, Time::ZERO);
    }
    rdma.net.run_until(Time::from_millis(100));
    let mut last_done = Time::ZERO;
    for &qp in &qps {
        let wcs = rdma.poll_cq(qp);
        assert_eq!(wcs.len(), 1);
        assert_eq!(wcs[0].status, WcStatus::Success);
        last_done = last_done.max(wcs[0].completed);
    }
    // 40 MB through a 40 G downlink, minus the DCQCN convergence
    // transient: comfortably under 25 ms.
    assert!(
        last_done < Time::from_millis(25),
        "fan-in finished by {last_done}"
    );
}

/// PFC-only mode works through the same API (and shows its unfairness).
#[test]
fn pfc_only_mode_also_runs() {
    let mut rdma = Rdma::star(
        5,
        LinkParams::default(),
        RdmaConfig {
            cc: CcMode::None,
            ..RdmaConfig::default()
        },
        23,
    );
    let hosts = rdma.hosts().to_vec();
    let qps: Vec<_> = (0..4).map(|i| rdma.create_qp(hosts[i], hosts[4])).collect();
    for &qp in &qps {
        rdma.post_write(qp, 10_000_000, Time::ZERO);
    }
    rdma.net.run_until(Time::from_millis(100));
    for &qp in &qps {
        assert_eq!(rdma.poll_cq(qp).len(), 1, "lossless: still completes");
    }
}
