//! PFC losslessness and the §4 ECN-before-PFC guarantee, exercised end to
//! end on the packet simulator.

use dcqcn::prelude::*;
use netsim::prelude::*;
use netsim::topology::{clos_testbed, star, LinkParams};

fn no_cc_host() -> HostConfig {
    HostConfig {
        cnp_interval: None,
        ..HostConfig::default()
    }
}

/// With PFC enabled, a brutal 8:1 incast with **no** congestion control
/// must never drop a packet — PAUSE absorbs everything.
#[test]
fn pfc_is_lossless_under_uncontrolled_incast() {
    for seed in 1..=3 {
        let mut s = star(
            9,
            LinkParams::default(),
            no_cc_host(),
            SwitchConfig::paper_default(),
            seed,
        );
        let dst = s.hosts[8];
        for i in 0..8 {
            let f = s
                .net
                .add_flow(s.hosts[i], dst, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
            s.net.send_message(f, u64::MAX, Time::ZERO);
        }
        s.net.run_until(Time::from_millis(30));
        let st = s.net.switch_stats(s.switch);
        assert_eq!(st.drops_pool, 0, "seed {seed}: shared pool never overflows");
        assert_eq!(st.drops_lossy, 0);
        assert!(st.pause_tx > 0, "seed {seed}: PFC actually engaged");
        assert!(st.resume_tx > 0, "seed {seed}: and released");
    }
}

/// Losslessness holds across the whole Clos too, including cascading
/// PAUSE chains.
#[test]
fn clos_is_lossless_with_cascading_pauses() {
    let mut tb = clos_testbed(
        5,
        LinkParams::default(),
        no_cc_host(),
        SwitchConfig::paper_default(),
        5,
    );
    let r = tb.hosts[3][0];
    let mut flows = Vec::new();
    for i in 0..4 {
        flows.push(
            tb.net
                .add_flow(tb.hosts[0][i], r, DATA_PRIORITY, |l| Box::new(NoCc::new(l))),
        );
    }
    for &f in &flows {
        tb.net.send_message(f, u64::MAX, Time::ZERO);
    }
    tb.net.run_until(Time::from_millis(30));
    let mut total_pause = 0;
    for id in tb.tors.iter().chain(&tb.leaves).chain(&tb.spines) {
        let st = tb.net.switch_stats(*id);
        assert_eq!(st.drops_pool + st.drops_lossy, 0, "no drops anywhere");
        total_pause += st.pause_tx;
    }
    assert!(total_pause > 0, "incast triggered PFC somewhere");
    // Every byte the receiver got arrived in order (goodput counted).
    let delivered: u64 = flows
        .iter()
        .map(|&f| tb.net.flow_stats(f).delivered_bytes)
        .sum();
    assert!(delivered > 0);
}

/// With the deployed §4 thresholds and DCQCN, ECN fires and PFC does not:
/// the end-to-end loop keeps ingress queues below the pause point.
#[test]
fn deployed_thresholds_mark_before_pausing() {
    let params = DcqcnParams::paper();
    let mut s = star(
        9,
        LinkParams::default(),
        dcqcn_host_config(params),
        SwitchConfig::paper_default().with_red(red_deployed()),
        3,
    );
    let dst = s.hosts[8];
    for i in 0..8 {
        let f = s
            .net
            .add_flow(s.hosts[i], dst, DATA_PRIORITY, dcqcn(params));
        s.net.send_message(f, u64::MAX, Time::ZERO);
    }
    s.net.run_until(Time::from_millis(50));
    let st = s.net.switch_stats(s.switch);
    assert!(st.ecn_marks > 0, "ECN engaged");
    assert_eq!(st.pause_tx, 0, "PFC never needed");
    assert_eq!(st.drops_pool + st.drops_lossy, 0);
}

/// With the misconfigured static thresholds (ECN above PFC), PFC fires
/// even though DCQCN is running — the §6.2 misconfiguration.
#[test]
fn misconfigured_thresholds_pause_before_marking() {
    let params = DcqcnParams::paper();
    let mut sw = SwitchConfig::paper_default();
    sw.buffer.threshold = PfcThreshold::Static(24_470);
    sw.red = RedConfig::cutoff(5 * 24_470);
    let mut s = star(9, LinkParams::default(), dcqcn_host_config(params), sw, 3);
    let dst = s.hosts[8];
    for i in 0..8 {
        let f = s
            .net
            .add_flow(s.hosts[i], dst, DATA_PRIORITY, dcqcn(params));
        s.net.send_message(f, u64::MAX, Time::ZERO);
    }
    s.net.run_until(Time::from_millis(50));
    let st = s.net.switch_stats(s.switch);
    assert!(st.pause_tx > 0, "PFC fires before ECN can act");
    assert_eq!(st.drops_pool + st.drops_lossy, 0, "still lossless");
}

/// Without PFC the same incast drops packets (and DCQCN alone cannot
/// prevent the line-rate-start transient from overflowing lossy queues).
#[test]
fn disabling_pfc_loses_packets() {
    let params = DcqcnParams::paper();
    let mut s = star(
        9,
        LinkParams::default(),
        dcqcn_host_config(params),
        SwitchConfig::paper_default()
            .with_red(red_deployed())
            .without_pfc(),
        3,
    );
    let dst = s.hosts[8];
    let flows: Vec<FlowId> = (0..8)
        .map(|i| {
            s.net
                .add_flow(s.hosts[i], dst, DATA_PRIORITY, dcqcn(params))
        })
        .collect();
    for &f in &flows {
        s.net.send_message(f, 10_000_000, Time::ZERO);
    }
    s.net.run_until(Time::from_millis(100));
    let st = s.net.switch_stats(s.switch);
    assert!(
        st.drops_lossy > 0,
        "lossy mode drops under the start transient"
    );
    // Go-back-N still recovers: all messages complete.
    for &f in &flows {
        assert_eq!(
            s.net.flow_stats(f).completions.len(),
            1,
            "NAK-driven recovery completes the transfer"
        );
        assert_eq!(s.net.flow_stats(f).delivered_bytes, 10_000_000);
    }
}

/// PFC PAUSE applies per priority class: pausing the data class does not
/// block the control class (CNPs keep flowing).
#[test]
fn control_class_is_never_paused() {
    // Uncontrolled incast (pauses guaranteed) + DCQCN NP generating CNPs
    // on a second flow sharing the fabric: CNPs must still arrive.
    let params = DcqcnParams::paper();
    let mut s = star(
        6,
        LinkParams::default(),
        dcqcn_host_config(params),
        SwitchConfig::paper_default().with_red(red_deployed()),
        3,
    );
    let dst = s.hosts[5];
    let mut flows = Vec::new();
    for i in 0..4 {
        let f = s
            .net
            .add_flow(s.hosts[i], dst, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
        s.net.send_message(f, u64::MAX, Time::ZERO);
        flows.push(f);
    }
    let watched = s
        .net
        .add_flow(s.hosts[4], dst, DATA_PRIORITY, dcqcn(params));
    s.net.send_message(watched, u64::MAX, Time::ZERO);
    s.net.run_until(Time::from_millis(30));
    let st = s.net.flow_stats(watched);
    assert!(st.cnps_sent > 0, "NP generated CNPs");
    assert_eq!(
        st.cnps_sent, st.cnps_received,
        "every CNP reached the sender despite data-class pauses"
    );
}
