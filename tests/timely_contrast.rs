//! §3.3's DCQCN-vs-TIMELY contrast as executable assertions.

use baselines::timely::{timely, timely_host_config, TimelyParams};
use dcqcn::prelude::*;
use netsim::prelude::*;
use netsim::topology::{star, LinkParams};

/// Congestion-control factory handed to `Network::add_flow`.
type CcFactory = Box<dyn Fn(Bandwidth) -> Box<dyn CongestionControl>>;

/// TIMELY alone on a clean fabric holds near line rate (its RTT sits
/// below T_low, so it only ever increases).
#[test]
fn timely_alone_runs_at_line_rate() {
    let mut s = star(
        2,
        LinkParams::default(),
        timely_host_config(),
        SwitchConfig::paper_default(),
        1,
    );
    let f = s.net.add_flow(
        s.hosts[0],
        s.hosts[1],
        DATA_PRIORITY,
        timely(TimelyParams::default_40g()),
    );
    s.net.send_message(f, u64::MAX, Time::ZERO);
    s.net.run_until(Time::from_millis(20));
    let gbps = s.net.flow_stats(f).delivered_bytes as f64 * 8.0 / 20e-3 / 1e9;
    assert!(gbps > 35.0, "clean-path TIMELY: {gbps:.1} Gbps");
}

/// TIMELY under *forward* congestion does reduce its rate (it is a real
/// congestion controller, not a strawman): a 4:1 TIMELY incast keeps the
/// queue bounded well below the PFC regime.
#[test]
fn timely_controls_forward_congestion() {
    let mut s = star(
        5,
        LinkParams::default(),
        timely_host_config(),
        SwitchConfig::paper_default(),
        2,
    );
    let dst = s.hosts[4];
    let flows: Vec<FlowId> = (0..4)
        .map(|i| {
            s.net.add_flow(
                s.hosts[i],
                dst,
                DATA_PRIORITY,
                timely(TimelyParams::default_40g()),
            )
        })
        .collect();
    for &f in &flows {
        s.net.send_message(f, u64::MAX, Time::ZERO);
    }
    s.net.run_until(Time::from_millis(60));
    let total: f64 = flows
        .iter()
        .map(|&f| s.net.flow_stats(f).delivered_bytes as f64 * 8.0 / 60e-3 / 1e9)
        .sum();
    assert!(total > 25.0, "TIMELY incast utilization: {total:.1}");
    // TIMELY's whole point: it backs off before PFC has to act.
    let st = s.net.switch_stats(s.switch);
    assert!(
        st.pause_tx < 1000,
        "RTT control kept PFC mostly idle ({} pauses)",
        st.pause_tx
    );
}

/// The §3.3 contrast: reverse-path congestion (which inflates measured
/// RTT but leaves the forward path clear) throttles TIMELY and not DCQCN.
#[test]
fn reverse_congestion_hurts_timely_not_dcqcn() {
    let run = |use_timely: bool| -> f64 {
        let (host, mk): (HostConfig, CcFactory) = if use_timely {
            (
                timely_host_config(),
                Box::new(timely(TimelyParams::default_40g())),
            )
        } else {
            (
                dcqcn_host_config(DcqcnParams::paper()),
                Box::new(dcqcn(DcqcnParams::paper())),
            )
        };
        let mut s = star(
            6,
            LinkParams::default(),
            host,
            SwitchConfig::paper_default().with_red(red_deployed()),
            13,
        );
        let fwd = s.net.add_flow(s.hosts[0], s.hosts[1], DATA_PRIORITY, &mk);
        s.net.send_message(fwd, u64::MAX, Time::ZERO);
        // Reverse 3:1 incast into the measured flow's *source* host.
        for i in 2..5 {
            let rf = s.net.add_flow(s.hosts[i], s.hosts[0], DATA_PRIORITY, |l| {
                Box::new(NoCc::new(l))
            });
            s.net.send_message(rf, u64::MAX, Time::from_millis(20));
        }
        s.net.enable_sampling(
            Duration::from_micros(200),
            SamplerConfig {
                all_flows: true,
                ..SamplerConfig::default()
            },
        );
        s.net.run_until(Time::from_millis(60));
        s.net
            .goodput_gbps(fwd, Time::from_millis(30), Time::from_millis(60))
    };
    let dcqcn_rate = run(false);
    let timely_rate = run(true);
    assert!(
        dcqcn_rate > 30.0,
        "DCQCN ignores reverse congestion: {dcqcn_rate:.1}"
    );
    assert!(
        timely_rate < dcqcn_rate / 3.0,
        "TIMELY throttles on inflated RTT: {timely_rate:.1} vs {dcqcn_rate:.1}"
    );
}
