//! Headline shape assertions from the paper's evaluation, at reduced
//! scale (full-scale numbers come from `cargo run -p experiments`).

use baselines::dctcp::{dctcp, DctcpParams};
use dcqcn::prelude::*;
use experiments::common::CcChoice;
use experiments::scenarios::{unfairness_run, victim_run};
use netsim::prelude::*;
use netsim::topology::{parking_lot, star, LinkParams};

/// Figure 3 vs Figure 8: PFC alone is unfair (H4's share dominates);
/// DCQCN equalizes.
#[test]
fn dcqcn_fixes_pfc_unfairness() {
    let dur = Duration::from_millis(120);
    let warm = Duration::from_millis(40);
    let pfc_only = unfairness_run(CcChoice::None, 2, dur, warm);
    // H4 (index 3) beats every T1 host.
    let h4 = pfc_only[3];
    assert!(
        pfc_only[..3].iter().all(|&h| h4 >= h - 0.5),
        "PFC-only favors H4: {pfc_only:?}"
    );
    let spread_pfc = pfc_only.iter().cloned().fold(0.0f64, f64::max)
        - pfc_only.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread_pfc > 4.0, "visible unfairness: {pfc_only:?}");

    let with_dcqcn = unfairness_run(
        CcChoice::dcqcn_paper(),
        2,
        Duration::from_millis(300),
        Duration::from_millis(180),
    );
    let spread_dcqcn = with_dcqcn.iter().cloned().fold(0.0f64, f64::max)
        - with_dcqcn.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        spread_dcqcn < spread_pfc / 2.0,
        "DCQCN equalizes: {with_dcqcn:?} vs {pfc_only:?}"
    );
}

/// Figure 4 vs Figure 9: adding remote senders under T3 hurts the victim
/// without DCQCN and not with it.
#[test]
fn dcqcn_fixes_victim_flow() {
    let dur = Duration::from_millis(120);
    let warm = Duration::from_millis(40);
    let v0: f64 = (1..=3)
        .map(|s| victim_run(CcChoice::None, 0, s, dur, warm))
        .sum::<f64>()
        / 3.0;
    let v2: f64 = (1..=3)
        .map(|s| victim_run(CcChoice::None, 2, s, dur, warm))
        .sum::<f64>()
        / 3.0;
    assert!(
        v2 < v0,
        "victim degrades with remote congestion: {v0:.1} -> {v2:.1}"
    );

    let d_dur = Duration::from_millis(300);
    let d_warm = Duration::from_millis(180);
    let d2: f64 = (1..=3)
        .map(|s| victim_run(CcChoice::dcqcn_paper(), 2, s, d_dur, d_warm))
        .sum::<f64>()
        / 3.0;
    assert!(
        d2 > 2.0 * v2,
        "DCQCN rescues the victim: {d2:.1} vs {v2:.1} Gbps"
    );
}

/// Figure 19: at the 2:1 microbenchmark, DCQCN's queue is far shorter
/// than DCTCP's (76.6 vs 162.9 KB at the 90th percentile in the paper).
#[test]
fn dcqcn_queue_is_shorter_than_dctcp() {
    let sample = |dcqcn_mode: bool| -> f64 {
        let (host, sw): (HostConfig, SwitchConfig) = if dcqcn_mode {
            (
                dcqcn_host_config(DcqcnParams::paper()),
                SwitchConfig::paper_default().with_red(red_deployed()),
            )
        } else {
            (
                HostConfig {
                    cnp_interval: None,
                    ack_every: 2,
                    ..HostConfig::default()
                },
                SwitchConfig::paper_default().with_red(red_cutoff_dctcp_40g()),
            )
        };
        let mut s = star(3, LinkParams::default(), host, sw, 3);
        let dst = s.hosts[2];
        for i in 0..2 {
            let f = if dcqcn_mode {
                s.net
                    .add_flow(s.hosts[i], dst, DATA_PRIORITY, dcqcn(DcqcnParams::paper()))
            } else {
                s.net.add_flow(
                    s.hosts[i],
                    dst,
                    DATA_PRIORITY,
                    dctcp(DctcpParams::default_40g()),
                )
            };
            s.net.send_message(f, u64::MAX, Time::ZERO);
        }
        let port = PortId(2);
        s.net.enable_sampling(
            Duration::from_micros(10),
            SamplerConfig {
                queues: vec![(s.switch, port)],
                ..SamplerConfig::default()
            },
        );
        s.net.run_until(Time::from_millis(120));
        let tl = s.net.queue_timeline(s.switch, port).expect("sampled port");
        // Skip the first 40 ms line-rate transient, as before.
        tl.weighted_percentile(90.0, Time::from_millis(40)) / 1000.0
    };
    let q_dcqcn = sample(true);
    let q_dctcp = sample(false);
    assert!(q_dcqcn < 110.0, "DCQCN p90 {q_dcqcn:.1} KB (paper 76.6)");
    assert!(
        (130.0..200.0).contains(&q_dctcp),
        "DCTCP p90 {q_dctcp:.1} KB rides its 160 KB threshold"
    );
    assert!(q_dcqcn < q_dctcp * 0.7, "DCQCN clearly shorter");
}

/// Figure 20: RED-like marking rescues the two-bottleneck flow that
/// cut-off marking starves.
#[test]
fn red_marking_mitigates_multi_bottleneck() {
    let run = |red: RedConfig| -> [f64; 3] {
        let cc = CcChoice::Dcqcn(DcqcnParams::paper());
        let mut sw = cc.switch_config(true, false);
        sw.red = red;
        let pl = parking_lot(LinkParams::default(), cc.host_config(), sw, 17);
        let mut net = pl.net;
        let f = cc.factory();
        let f1 = net.add_flow(pl.h1, pl.r1, DATA_PRIORITY, &f);
        let f2 = net.add_flow(pl.h2, pl.r2, DATA_PRIORITY, &f);
        let f3 = net.add_flow(pl.h3, pl.r2, DATA_PRIORITY, &f);
        for fl in [f1, f2, f3] {
            net.send_message(fl, u64::MAX, Time::ZERO);
        }
        net.enable_sampling(
            Duration::from_micros(500),
            SamplerConfig {
                all_flows: true,
                ..SamplerConfig::default()
            },
        );
        net.run_until(Time::from_millis(300));
        [f1, f2, f3].map(|fl| net.goodput_gbps(fl, Time::from_millis(150), Time::from_millis(300)))
    };
    let cutoff = run(RedConfig::cutoff(40_000));
    let red = run(red_deployed());
    assert!(
        red[1] > cutoff[1] + 3.0,
        "two-bottleneck f2: RED {:.1} vs cutoff {:.1} Gbps",
        red[1],
        cutoff[1]
    );
    assert!(red[1] < 20.0, "mitigated, not fully solved (max-min is 20)");
}

/// §6.1's capstone: K:1 incast with the deployed parameters keeps total
/// throughput high for K up to 16.
#[test]
fn deep_incast_keeps_high_utilization() {
    let p = DcqcnParams::paper();
    for k in [2usize, 8, 16] {
        let mut s = star(
            k + 1,
            LinkParams::default(),
            dcqcn_host_config(p),
            SwitchConfig::paper_default().with_red(red_deployed()),
            9,
        );
        let dst = s.hosts[k];
        let flows: Vec<FlowId> = (0..k)
            .map(|i| s.net.add_flow(s.hosts[i], dst, DATA_PRIORITY, dcqcn(p)))
            .collect();
        for &f in &flows {
            s.net.send_message(f, u64::MAX, Time::ZERO);
        }
        s.net.enable_sampling(
            Duration::from_micros(500),
            SamplerConfig {
                all_flows: true,
                ..SamplerConfig::default()
            },
        );
        s.net.run_until(Time::from_millis(200));
        let total: f64 = flows
            .iter()
            .map(|&f| {
                s.net
                    .goodput_gbps(f, Time::from_millis(100), Time::from_millis(200))
            })
            .sum();
        // Paper reports > 39 Gbps wire rate; our goodput ceiling is
        // 40 × 1436/1500 ≈ 38.3 Gbps. Allow the deep-incast oscillation
        // some slack but demand high utilization.
        assert!(total > 32.0, "{k}:1 total goodput {total:.1} Gbps");
    }
}
