//! Property-based tests on the core invariants (proptest).

use dcqcn::params::DcqcnParams;
use dcqcn::rp::{DcqcnRp, TIMER_ALPHA, TIMER_RATE};
use netsim::buffer::{BufferConfig, PfcThreshold, SharedBuffer};
use netsim::cc::{CcActions, CongestionControl, NoCc};
use netsim::ecn::RedConfig;
use netsim::event::{Event, EventQueue, NodeId, PortId};
use netsim::host::HostConfig;
use netsim::packet::DATA_PRIORITY;
use netsim::routing::compute_routes;
use netsim::switch::SwitchConfig;
use netsim::topology::{star, LinkParams};
use netsim::units::{Bandwidth, Duration, Time};
use proptest::prelude::*;

proptest! {
    /// The event queue pops in nondecreasing time order for any schedule.
    #[test]
    fn event_queue_orders_any_schedule(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(Time::from_nanos(t), Event::Hook { id: t as usize });
        }
        let mut last = Time::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    /// Serialization time is monotone in length and superadditive-exact:
    /// sending a+b bytes takes no longer than a then b (ceil rounding).
    #[test]
    fn serialization_monotone_and_additive(
        bw_mbps in 1u64..200_000,
        a in 1u64..100_000,
        b in 1u64..100_000,
    ) {
        let bw = Bandwidth::mbps(bw_mbps);
        prop_assert!(bw.serialize(a) <= bw.serialize(a + b));
        let together = bw.serialize(a + b);
        let apart = bw.serialize(a) + bw.serialize(b);
        prop_assert!(apart >= together);
        // Ceil rounding costs at most 2 ps here.
        prop_assert!((apart - together) <= Duration::from_picos(2));
    }

    /// Shared-buffer accounting: occupancy equals the running sum for any
    /// admit/release interleaving, and the dynamic threshold never grows
    /// when occupancy grows.
    #[test]
    fn buffer_accounting_balances(ops in prop::collection::vec((0usize..4, 0usize..8, 64u64..9000), 1..300)) {
        let mut cfg = BufferConfig::trident2();
        cfg.num_ports = 4;
        let mut buf = SharedBuffer::new(cfg);
        let mut ledger = vec![[0u64; 8]; 4];
        let mut last_threshold = buf.pfc_threshold();
        let mut last_occ = 0u64;
        for (port, prio, bytes) in ops {
            // Alternate: admit when even total, release something if held.
            if ledger[port][prio] >= bytes {
                buf.release(port, prio, bytes);
                ledger[port][prio] -= bytes;
            } else if buf.admit(port, prio, bytes) {
                ledger[port][prio] += bytes;
            }
            let total: u64 = ledger.iter().flatten().sum();
            prop_assert_eq!(buf.occupied(), total);
            let t = buf.pfc_threshold();
            if buf.occupied() > last_occ {
                prop_assert!(t <= last_threshold, "threshold monotone non-increasing in occupancy");
            }
            last_threshold = t;
            last_occ = buf.occupied();
        }
    }

    /// RED marking probability is within [0, 1] and monotone in the queue
    /// for arbitrary configurations.
    #[test]
    fn red_probability_valid(kmin in 0u64..500_000, span in 0u64..500_000, pmax in 0.0f64..=1.0, q1 in 0u64..2_000_000, q2 in 0u64..2_000_000) {
        let red = RedConfig { kmin_bytes: kmin, kmax_bytes: kmin + span, pmax };
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let (p_lo, p_hi) = (red.mark_probability(lo), red.mark_probability(hi));
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!((0.0..=1.0).contains(&p_hi));
        prop_assert!(p_lo <= p_hi + 1e-12);
    }

    /// The DCQCN RP keeps its invariants under arbitrary event sequences:
    /// min_rate ≤ R_C ≤ R_T ≤ line rate and 0 ≤ α ≤ 1.
    #[test]
    fn rp_invariants_under_arbitrary_events(events in prop::collection::vec(0u8..4, 1..500)) {
        let line = Bandwidth::gbps(40);
        let params = DcqcnParams::paper();
        let mut rp = DcqcnRp::new(line, params);
        let mut actions = CcActions::default();
        let mut now = Time::ZERO;
        for e in events {
            now += Duration::from_micros(7);
            match e {
                0 => rp.on_cnp(now, &mut actions),
                1 => rp.on_timer(now, TIMER_RATE, &mut actions),
                2 => rp.on_timer(now, TIMER_ALPHA, &mut actions),
                _ => rp.on_send(now, 1500, &mut actions),
            }
            prop_assert!(rp.rate() >= params.min_rate);
            prop_assert!(rp.rate() <= line);
            prop_assert!(rp.target_rate() <= line);
            prop_assert!(rp.rate() <= rp.target_rate());
            prop_assert!((0.0..=1.0 + 1e-12).contains(&rp.alpha()));
        }
    }

    /// DCTCP keeps cwnd within [MSS, cap] under arbitrary ACK streams.
    #[test]
    fn dctcp_window_bounds(acks in prop::collection::vec((1u64..100_000, 0u32..64, 0u32..64), 1..300)) {
        use baselines::dctcp::{Dctcp, DctcpParams};
        let params = DctcpParams::default_40g();
        let mut d = Dctcp::new(Bandwidth::gbps(40), params);
        let mut actions = CcActions::default();
        for (bytes, pkts, marked) in acks {
            let pkts = pkts.max(1);
            let marked = marked.min(pkts);
            d.on_ack(Time::ZERO, bytes, pkts, marked, None, &mut actions);
            prop_assert!(d.cwnd_bytes() >= params.mss);
            prop_assert!(d.cwnd_bytes() <= params.max_cwnd_bytes);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&d.alpha()));
        }
    }

    /// Routing: on a random two-tier tree plus shortcuts, every node has a
    /// route to every host and route port lists are non-empty.
    #[test]
    fn routing_reaches_all_hosts(nhosts in 2usize..8, nswitches in 1usize..5, extra in 0usize..4) {
        // Nodes: switches [0, nswitches), hosts [nswitches, nswitches+nhosts).
        let mut edges = Vec::new();
        let mut port_count = vec![0usize; nswitches + nhosts];
        let link = |a: usize, b: usize, pc: &mut Vec<usize>| {
            let (pa, pb) = (pc[a], pc[b]);
            pc[a] += 1;
            pc[b] += 1;
            (NodeId(a), PortId(pa), NodeId(b), PortId(pb))
        };
        // Chain the switches.
        for s in 1..nswitches {
            let e = link(s - 1, s, &mut port_count);
            edges.push(e);
        }
        // Attach each host to some switch.
        for h in 0..nhosts {
            let s = h % nswitches;
            let e = link(s, nswitches + h, &mut port_count);
            edges.push(e);
        }
        // Extra switch-switch shortcuts (parallel paths).
        for i in 0..extra {
            if nswitches >= 2 {
                let a = i % nswitches;
                let b = (i + 1) % nswitches;
                if a != b {
                    let e = link(a, b, &mut port_count);
                    edges.push(e);
                }
            }
        }
        let hosts: Vec<NodeId> = (0..nhosts).map(|h| NodeId(nswitches + h)).collect();
        let tables = compute_routes(nswitches + nhosts, &edges, &hosts);
        for (n, table) in tables.iter().enumerate() {
            for &h in &hosts {
                if NodeId(n) == h {
                    continue;
                }
                let ports = table.get(&h);
                prop_assert!(ports.is_some(), "node {n} can reach host {h:?}");
                prop_assert!(!ports.unwrap().is_empty());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End-to-end conservation: on a lossless fabric, any batch of
    /// messages is delivered exactly — delivered bytes equal the sum of
    /// message sizes, every message completes, nothing is dropped.
    #[test]
    fn lossless_fabric_delivers_every_message(
        msgs in prop::collection::vec((0usize..3, 1u64..200_000), 1..20),
        seed in 0u64..1000,
    ) {
        let mut s = star(
            4,
            LinkParams::default(),
            HostConfig { cnp_interval: None, ..HostConfig::default() },
            SwitchConfig::paper_default(),
            seed,
        );
        let dst = s.hosts[3];
        let flows: Vec<_> = (0..3)
            .map(|i| s.net.add_flow(s.hosts[i], dst, DATA_PRIORITY, |l| Box::new(NoCc::new(l))))
            .collect();
        let mut expect = [0u64; 3];
        let mut counts = [0usize; 3];
        for (i, &(src, bytes)) in msgs.iter().enumerate() {
            s.net.send_message(flows[src], bytes, Time::from_micros(i as u64 * 10));
            expect[src] += bytes;
            counts[src] += 1;
        }
        s.net.run_until(Time::from_millis(50));
        for i in 0..3 {
            let st = s.net.flow_stats(flows[i]);
            prop_assert_eq!(st.delivered_bytes, expect[i]);
            prop_assert_eq!(st.completions.len(), counts[i]);
            prop_assert_eq!(st.retx_pkts, 0);
        }
        let sw = s.net.switch_stats(s.switch);
        prop_assert_eq!(sw.drops_pool + sw.drops_lossy, 0);
    }

    /// PFC thresholds: for any β ≥ 1 the dynamic ECN bound stays below
    /// the static PFC bound and grows with β (the §4 trade-off).
    #[test]
    fn dynamic_bound_behaves(beta in 1.0f64..64.0) {
        let cfg = BufferConfig::trident2();
        let b = dcqcn::thresholds::dynamic_ecn_bound(&cfg, beta);
        let b2 = dcqcn::thresholds::dynamic_ecn_bound(&cfg, beta + 1.0);
        prop_assert!(b <= dcqcn::thresholds::static_pfc_bound(&cfg));
        prop_assert!(b2 >= b);
        let _ = PfcThreshold::Dynamic { beta };
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Even on a *lossy* fabric (PFC off, drops happening), go-back-N
    /// delivers every message exactly, in order, with correct byte counts.
    #[test]
    fn lossy_fabric_still_delivers_exactly(
        msgs in prop::collection::vec(1u64..400_000, 2..10),
        seed in 0u64..500,
    ) {
        let mut s = star(
            6,
            LinkParams::default(),
            HostConfig { cnp_interval: None, ..HostConfig::default() },
            SwitchConfig::paper_default().without_pfc(),
            seed,
        );
        let dst = s.hosts[5];
        // A finite background burst forces lossy drops, then clears so
        // the measured flow's recovery can complete.
        for i in 1..5 {
            let bg = s.net.add_flow(s.hosts[i], dst, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
            s.net.send_message(bg, 10_000_000, Time::ZERO);
        }
        let f = s.net.add_flow(s.hosts[0], dst, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
        let total: u64 = msgs.iter().sum();
        for (i, &m) in msgs.iter().enumerate() {
            s.net.send_message(f, m, Time::from_micros(i as u64 * 50));
        }
        s.net.run_until(Time::from_millis(500));
        let st = s.net.flow_stats(f);
        prop_assert_eq!(st.delivered_bytes, total, "every byte exactly once");
        prop_assert_eq!(st.completions.len(), msgs.len());
        prop_assert!(!st.aborted);
        // The fabric really was lossy.
        let sw = s.net.switch_stats(NodeId(0));
        prop_assert!(sw.drops_lossy > 0, "overload produced drops");
    }
}

/// The shrunken case pinned in `tests/properties.proptest-regressions`
/// (`msgs = [6265, 350742, 10910, 10722, 284230, 164947], seed = 348`),
/// re-run explicitly.
///
/// Proptest once caught a go-back-N delivery failure here: a lossy 5:1
/// overload drops packets from a multi-message flow whose two large
/// transfers (350 KB, 284 KB) straddle several retransmission rounds, and
/// every byte must still be delivered exactly once. The offline proptest
/// shim does not replay the seed file, so the case is pinned as a plain
/// test; keep the seed file too for when the real crate is swapped back.
#[test]
fn lossy_regression_msgs_seed_348() {
    let msgs: [u64; 6] = [6265, 350742, 10910, 10722, 284230, 164947];
    let seed = 348;
    let mut s = star(
        6,
        LinkParams::default(),
        HostConfig {
            cnp_interval: None,
            ..HostConfig::default()
        },
        SwitchConfig::paper_default().without_pfc(),
        seed,
    );
    let dst = s.hosts[5];
    for i in 1..5 {
        let bg = s
            .net
            .add_flow(s.hosts[i], dst, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
        s.net.send_message(bg, 10_000_000, Time::ZERO);
    }
    let f = s
        .net
        .add_flow(s.hosts[0], dst, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
    let total: u64 = msgs.iter().sum();
    for (i, &m) in msgs.iter().enumerate() {
        s.net.send_message(f, m, Time::from_micros(i as u64 * 50));
    }
    s.net.run_until(Time::from_millis(500));
    let st = s.net.flow_stats(f);
    assert_eq!(st.delivered_bytes, total, "every byte exactly once");
    assert_eq!(st.completions.len(), msgs.len());
    assert!(!st.aborted);
    assert!(
        s.net.switch_stats(NodeId(0)).drops_lossy > 0,
        "overload produced drops"
    );
}

/// The packet tracer's view is consistent with the counters: marks,
/// deliveries and CNPs agree between the trace and the stats.
#[test]
fn trace_agrees_with_counters() {
    use dcqcn::prelude::*;
    use netsim::trace::TraceKind;
    let params = DcqcnParams::paper();
    let mut s = star(
        3,
        LinkParams::default(),
        dcqcn_host_config(params),
        SwitchConfig::paper_default().with_red(red_deployed()),
        5,
    );
    s.net.enable_trace(1_000_000);
    let dst = s.hosts[2];
    let f1 = s
        .net
        .add_flow(s.hosts[0], dst, DATA_PRIORITY, dcqcn(params));
    let f2 = s
        .net
        .add_flow(s.hosts[1], dst, DATA_PRIORITY, dcqcn(params));
    s.net.send_message(f1, u64::MAX, Time::ZERO);
    s.net.send_message(f2, u64::MAX, Time::ZERO);
    s.net.run_until(Time::from_millis(20));

    let delivered_traced = s.net.trace().of_kind(TraceKind::Delivered).len() as u64;
    let delivered_counted: u64 = [f1, f2]
        .iter()
        .map(|&f| s.net.flow_stats(f).delivered_pkts)
        .sum();
    assert_eq!(delivered_traced, delivered_counted);

    let marks_traced = s.net.trace().of_kind(TraceKind::Marked).len() as u64;
    assert_eq!(marks_traced, s.net.switch_stats(NodeId(0)).ecn_marks);

    let cnps_traced = s.net.trace().of_kind(TraceKind::CnpSent).len() as u64;
    let cnps_counted: u64 = [f1, f2]
        .iter()
        .map(|&f| s.net.flow_stats(f).cnps_sent)
        .sum();
    assert_eq!(cnps_traced, cnps_counted);
    assert!(cnps_traced > 0, "congestion actually happened");

    // Trace timestamps are nondecreasing.
    let times: Vec<_> = s.net.trace().iter().map(|e| e.at).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}
