//! Cross-crate determinism guarantees: a run is a pure function of the
//! topology, workload, and seed.

use dcqcn::prelude::*;
use netsim::prelude::*;
use netsim::topology::{clos_testbed, star, LinkParams};

/// Runs a 4:1 DCQCN incast on a star and returns a behavioral fingerprint.
fn star_fingerprint(seed: u64) -> Vec<u64> {
    let params = DcqcnParams::paper();
    let mut s = star(
        5,
        LinkParams::default(),
        dcqcn_host_config(params),
        SwitchConfig::paper_default().with_red(red_deployed()),
        seed,
    );
    let dst = s.hosts[4];
    let flows: Vec<FlowId> = (0..4)
        .map(|i| {
            s.net
                .add_flow(s.hosts[i], dst, DATA_PRIORITY, dcqcn(params))
        })
        .collect();
    for &f in &flows {
        s.net.send_message(f, u64::MAX, Time::ZERO);
    }
    s.net.run_until(Time::from_millis(30));
    let mut fp: Vec<u64> = flows
        .iter()
        .flat_map(|&f| {
            let st = s.net.flow_stats(f);
            [
                st.delivered_bytes,
                st.sent_pkts,
                st.cnps_sent,
                st.cnps_received,
            ]
        })
        .collect();
    fp.push(s.net.events_executed());
    fp.push(s.net.switch_stats(s.switch).ecn_marks);
    fp
}

#[test]
fn identical_seeds_are_bit_identical() {
    assert_eq!(star_fingerprint(11), star_fingerprint(11));
}

#[test]
fn different_seeds_differ() {
    // RED sampling differs, so marks/CNP counts should differ.
    assert_ne!(star_fingerprint(11), star_fingerprint(12));
}

/// ECMP path selection is a deterministic function of the seed: the
/// per-host goodputs of the Clos unfairness scenario replay exactly.
#[test]
fn clos_ecmp_draws_replay() {
    let run = |seed: u64| -> Vec<u64> {
        let mut tb = clos_testbed(
            5,
            LinkParams::default(),
            HostConfig {
                cnp_interval: None,
                ..HostConfig::default()
            },
            SwitchConfig::paper_default(),
            seed,
        );
        let senders = [
            tb.hosts[0][0],
            tb.hosts[0][1],
            tb.hosts[0][2],
            tb.hosts[3][0],
        ];
        let r = tb.hosts[3][1];
        let flows: Vec<FlowId> = senders
            .iter()
            .map(|&h| {
                tb.net
                    .add_flow(h, r, DATA_PRIORITY, |l| Box::new(NoCc::new(l)))
            })
            .collect();
        for &f in &flows {
            tb.net.send_message(f, u64::MAX, Time::ZERO);
        }
        tb.net.run_until(Time::from_millis(20));
        flows
            .iter()
            .map(|&f| tb.net.flow_stats(f).delivered_bytes)
            .collect()
    };
    assert_eq!(run(3), run(3));
    // And seeds change the ECMP outcome for at least one of a few seeds.
    let base = run(3);
    assert!(
        (4..8).any(|s| run(s) != base),
        "ECMP outcomes vary with seed"
    );
}

/// Workload generation is deterministic too: the full benchmark pipeline
/// replays end to end.
#[test]
fn benchmark_pipeline_replays() {
    use experiments::common::CcChoice;
    use experiments::scenarios::{benchmark_run, BenchmarkConfig};
    let cfg = BenchmarkConfig {
        cc: CcChoice::dcqcn_paper(),
        pairs: 6,
        incast_degree: 4,
        duration: Duration::from_millis(60),
        pfc: true,
        misconfigured: false,
        nack_enabled: true,
        seed: 77,
    };
    let a = benchmark_run(&cfg);
    let b = benchmark_run(&cfg);
    assert_eq!(a.events, b.events);
    assert_eq!(a.user_goodputs, b.user_goodputs);
    assert_eq!(a.incast_goodputs, b.incast_goodputs);
    assert_eq!(a.spine_pause_rx, b.spine_pause_rx);
}
